"""A PIM cluster: n homogeneous modules dispatched in parallel.

The HP and LP clusters each contain four modules in the paper's prototype
(Table I).  Within a cluster, modules compute independently in parallel;
the cluster's completion time for a batch of work is the maximum over its
modules.  Weight blocks assigned to a cluster are striped round-robin over
the modules, which is how the controller's Data Allocator balances load.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.encoding import ClusterId
from ..memory.hybrid import BankKind
from .module import ModuleKind, PIMModule


class PIMCluster:
    """A set of identical PIM modules plus dispatch helpers."""

    def __init__(
        self,
        cluster_id: ClusterId,
        kind: ModuleKind,
        module_count: int = 4,
        mram_capacity: int = 64 * 1024,
        sram_capacity: int = 64 * 1024,
    ) -> None:
        if module_count <= 0:
            raise ConfigurationError(
                f"cluster needs at least one module, got {module_count}"
            )
        self.cluster_id = cluster_id
        self.kind = kind
        self.modules = [
            PIMModule(
                name=f"{kind.value}{i}",
                kind=kind,
                mram_capacity=mram_capacity,
                sram_capacity=sram_capacity,
            )
            for i in range(module_count)
        ]

    def __len__(self) -> int:
        return len(self.modules)

    def module(self, index: int) -> PIMModule:
        """Return module ``index``; raises on out-of-range."""
        if not 0 <= index < len(self.modules):
            raise ConfigurationError(
                f"cluster {self.kind.value}: module index {index} outside "
                f"[0, {len(self.modules)})"
            )
        return self.modules[index]

    # -- characteristics -------------------------------------------------------

    def mac_time_ns(self, weight_bank: BankKind) -> float:
        """Per-MAC period of one module with weights in ``weight_bank``."""
        return self.modules[0].mac_time_ns(weight_bank)

    def mac_dynamic_energy_nj(self, weight_bank: BankKind) -> float:
        """Per-MAC dynamic energy with weights in ``weight_bank``."""
        return self.modules[0].mac_dynamic_energy_nj(weight_bank)

    def bank_capacity(self, bank: BankKind) -> int:
        """Total bytes of ``bank`` across the cluster's modules."""
        return sum(
            m.memory.bank(bank).capacity_bytes
            for m in self.modules
            if bank in m.memory.banks
        )

    # -- parallel dispatch -----------------------------------------------------------

    def split_macs(self, count: int):
        """Stripe ``count`` MACs over the modules as evenly as possible."""
        if count < 0:
            raise ConfigurationError("MAC count must be non-negative")
        n = len(self.modules)
        base, extra = divmod(count, n)
        return [base + (1 if i < extra else 0) for i in range(n)]

    def run_macs(self, count: int, weight_bank: BankKind) -> float:
        """Run ``count`` MACs striped over the modules; returns elapsed ns.

        Modules execute in parallel, so the elapsed time is the maximum of
        the per-module times (the module with the largest share).
        """
        elapsed = 0.0
        for module, share in zip(self.modules, self.split_macs(count)):
            elapsed = max(elapsed, module.run_macs(share, weight_bank))
        return elapsed

    def run_mixed_macs(self, mram_macs: int, sram_macs: int) -> float:
        """Run a mixed MRAM/SRAM weight workload; returns elapsed ns.

        Within one module, MRAM-weight and SRAM-weight phases serialise
        (the paper: parallelism holds across clusters, not across the two
        banks of one module), so each module's time is the sum of its two
        phases; the cluster completes at the slowest module.
        """
        mram_split = self.split_macs(mram_macs)
        sram_split = self.split_macs(sram_macs)
        elapsed = 0.0
        for module, m_share, s_share in zip(self.modules, mram_split, sram_split):
            module_time = module.run_macs(m_share, BankKind.MRAM)
            module_time += module.run_macs(s_share, BankKind.SRAM)
            elapsed = max(elapsed, module_time)
        return elapsed

    # -- power management --------------------------------------------------------------

    def gate_all(self, target: str) -> None:
        """Power-gate ``target`` on every module."""
        for module in self.modules:
            module.gate(target)

    def ungate_all(self, target: str) -> None:
        """Un-gate ``target`` on every module."""
        for module in self.modules:
            module.ungate(target)

    def account_idle(self, duration_ns: float) -> None:
        """Charge idle time on every module."""
        for module in self.modules:
            module.account_idle(duration_ns)

    # -- reporting ---------------------------------------------------------------------

    def total_energy_nj(self) -> float:
        """Total (dynamic + static) energy of the cluster so far."""
        return sum(m.energy().total_nj for m in self.modules)

    def reset_stats(self) -> None:
        """Zero statistics on every module."""
        for module in self.modules:
            module.reset_stats()
