"""One PIM module: PE + hybrid memory + module interface.

The module implements the paper's LOAD-state operand synchronisation: a
computation may pull a *variable* number of operands from MRAM and SRAM,
and the interface waits for the slower stream before handing the operand
set to the PE.  Two execution styles are offered:

* a **functional** path (:meth:`PIMModule.compute_dot`) that moves real
  INT8 bytes through the banks and the MAC datapath — used by correctness
  tests and the RISC-V-driven integration tests;
* a **fast accounting** path (:meth:`PIMModule.run_macs`) that charges the
  identical latency/energy for a whole batch of MACs without touching
  data — used by the cycle engine when sweeping 50-time-slice scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from ..memory.bank import BankStats
from ..memory.hybrid import BankKind, HybridMemory
from ..memory.technology import HP_VDD, LP_VDD
from ..pe.pe import ProcessingElement


class ModuleKind(str, Enum):
    """High-performance (1.2 V) or low-power (0.8 V) module flavour."""

    HP = "hp"
    LP = "lp"

    @property
    def vdd(self) -> float:
        """Supply voltage of this module flavour."""
        return HP_VDD if self is ModuleKind.HP else LP_VDD


@dataclass(frozen=True)
class ModuleEnergy:
    """Energy snapshot of one module, split by component (nJ)."""

    memory_dynamic_nj: float
    memory_static_nj: float
    pe_dynamic_nj: float
    pe_static_nj: float

    @property
    def total_nj(self) -> float:
        """All components summed."""
        return (
            self.memory_dynamic_nj
            + self.memory_static_nj
            + self.pe_dynamic_nj
            + self.pe_static_nj
        )


class PIMModule:
    """PE + hybrid MRAM/SRAM memory behind a module interface."""

    def __init__(
        self,
        name: str,
        kind: ModuleKind,
        mram_capacity: int = 64 * 1024,
        sram_capacity: int = 64 * 1024,
    ) -> None:
        self.name = name
        self.kind = kind
        self.memory = HybridMemory(
            name=name,
            vdd=kind.vdd,
            mram_capacity=mram_capacity,
            sram_capacity=sram_capacity,
        )
        self.pe = ProcessingElement(name=f"{name}.pe", vdd=kind.vdd)
        #: Wall-clock time this module has spent busy (ns).
        self.busy_time_ns = 0.0

    # -- characteristics -----------------------------------------------------

    def read_latency_ns(self, bank: BankKind) -> float:
        """Read latency of one of the module's banks."""
        return self.memory.bank(bank).read_latency_ns

    def mac_time_ns(self, weight_bank: BankKind) -> float:
        """Time of one MAC with the weight held in ``weight_bank``.

        Per MAC the interface fetches the weight from ``weight_bank`` and
        the activation from the SRAM buffer; the two fetches proceed in
        parallel streams and the PE starts after the slower one, then the
        next fetch is issued — so the per-MAC period is
        ``max(weight_read, activation_read) + pe_mac``.
        """
        weight_read = self.read_latency_ns(weight_bank)
        activation_read = self.read_latency_ns(BankKind.SRAM)
        return max(weight_read, activation_read) + self.pe.mac_latency_ns

    def mac_dynamic_energy_nj(self, weight_bank: BankKind) -> float:
        """Dynamic energy of one MAC with the weight in ``weight_bank``."""
        weight_bank_obj = self.memory.bank(weight_bank)
        sram = self.memory.bank(BankKind.SRAM)
        return (
            weight_bank_obj.read_energy_nj
            + sram.read_energy_nj
            + self.pe.mac_energy_nj
        )

    # -- functional path --------------------------------------------------------------

    def write_weights(self, bank: BankKind, offset: int, weights: bytes) -> float:
        """Place weight bytes in a bank; returns the elapsed time (ns)."""
        elapsed = self.memory.bank(bank).write(offset, weights)
        self.busy_time_ns += elapsed
        return elapsed

    def write_activations(self, offset: int, activations: bytes) -> float:
        """Place activation bytes in the SRAM buffer; returns elapsed ns."""
        elapsed = self.memory.bank(BankKind.SRAM).write(offset, activations)
        self.busy_time_ns += elapsed
        return elapsed

    def compute_dot(
        self,
        weight_bank: BankKind,
        weight_offset: int,
        activation_offset: int,
        length: int,
    ) -> tuple:
        """Functional dot product over ``length`` INT8 operand pairs.

        Weights stream from ``weight_bank`` and activations from the SRAM
        buffer.  Returns ``(accumulator_value, elapsed_ns)``; latency and
        energy are charged access-by-access, matching :meth:`mac_time_ns`.
        """
        if length <= 0:
            raise ConfigurationError("dot-product length must be positive")
        bank = self.memory.bank(weight_bank)
        sram = self.memory.bank(BankKind.SRAM)
        self.pe.mac.clear()
        elapsed = 0.0
        for i in range(length):
            raw_w = bank.read(weight_offset + i, 1)[0]
            raw_a = sram.read(activation_offset + i, 1)[0]
            weight = raw_w - 256 if raw_w >= 128 else raw_w
            activation = raw_a - 256 if raw_a >= 128 else raw_a
            self.pe.execute_mac(weight, activation)
            # Parallel fetch streams: the slower read hides the faster one.
            fetch = max(bank.read_latency_ns, sram.read_latency_ns)
            elapsed += fetch + self.pe.mac_latency_ns
        self.busy_time_ns += elapsed
        return self.pe.mac.accumulator, elapsed

    # -- fast accounting path ------------------------------------------------------------

    def run_macs(self, count: int, weight_bank: BankKind) -> float:
        """Charge time/energy for ``count`` MACs (no functional data).

        Accounts one weight read (from ``weight_bank``), one activation
        read (SRAM) and one PE operation per MAC; returns elapsed ns.
        """
        if count < 0:
            raise ConfigurationError("MAC count must be non-negative")
        if count == 0:
            return 0.0
        # One weight fetch plus one activation fetch (SRAM buffer) per MAC;
        # when weights live in SRAM the buffer simply absorbs both streams.
        self.memory.bank(weight_bank).charge_accesses(reads=count)
        self.memory.bank(BankKind.SRAM).charge_accesses(reads=count)
        self.pe.charge_macs(count)
        elapsed = count * self.mac_time_ns(weight_bank)
        self.busy_time_ns += elapsed
        return elapsed

    # -- power management --------------------------------------------------------------

    def gate(self, target: str) -> None:
        """Power-gate a component: ``"mram"``, ``"sram"``, ``"pe"`` or ``"all"``."""
        if target in ("mram", "all") and BankKind.MRAM in self.memory.banks:
            self.memory.power_off(BankKind.MRAM)
        if target in ("sram", "all") and BankKind.SRAM in self.memory.banks:
            self.memory.power_off(BankKind.SRAM)
        if target in ("pe", "all"):
            self.pe.power_off()
        if target not in ("mram", "sram", "pe", "all"):
            raise ConfigurationError(f"unknown gate target {target!r}")

    def ungate(self, target: str) -> None:
        """Un-gate a component (same targets as :meth:`gate`)."""
        if target in ("mram", "all") and BankKind.MRAM in self.memory.banks:
            self.memory.power_on(BankKind.MRAM)
        if target in ("sram", "all") and BankKind.SRAM in self.memory.banks:
            self.memory.power_on(BankKind.SRAM)
        if target in ("pe", "all"):
            self.pe.power_on()
        if target not in ("mram", "sram", "pe", "all"):
            raise ConfigurationError(f"unknown gate target {target!r}")

    def account_idle(self, duration_ns: float) -> None:
        """Charge idle time on the memory banks and the PE."""
        self.memory.account_idle(duration_ns)
        self.pe.account_idle(duration_ns)

    # -- reporting ---------------------------------------------------------------------

    def memory_stats(self) -> BankStats:
        """Merged statistics of the module's banks."""
        return self.memory.stats()

    def energy(self) -> ModuleEnergy:
        """Energy snapshot, split by component."""
        mem = self.memory.stats()
        return ModuleEnergy(
            memory_dynamic_nj=mem.dynamic_energy_nj,
            memory_static_nj=mem.static_energy_nj,
            pe_dynamic_nj=self.pe.stats.dynamic_energy_nj,
            pe_static_nj=self.pe.stats.static_energy_nj,
        )

    def reset_stats(self) -> None:
        """Zero all statistics (contents and power states are untouched)."""
        self.memory.reset_stats()
        self.pe.reset_stats()
        self.busy_time_ns = 0.0
