"""Deterministic config-hash sharding of experiment grids.

A sweep grid partitions into N shards by each config's content hash
(:meth:`~repro.api.config.ExperimentConfig.fingerprint`), so the
assignment depends on nothing but the config itself: every process that
expands the same grid computes the same partition, with no coordinator
and no shared state.  N machines each run ``repro sweep --shard I/N
--store DIR`` against one store, and a final ``--resume`` pass over the
full grid stitches the complete :class:`~repro.api.results.ResultSet`
from stored entries with zero recomputation.

Hash partitioning (rather than round-robin over the grid order) keeps
the assignment stable under grid *edits*: appending an axis value
reshuffles nothing that already ran — untouched configs keep their
shard, and their stored results keep being hits.
"""

from __future__ import annotations

from ..api.config import ExperimentConfig
from ..errors import ConfigurationError


def parse_shard(shard) -> tuple:
    """Normalise a shard selector to ``(index, count)``.

    Accepts the CLI's ``"I/N"`` string or an ``(index, count)`` pair;
    indices are zero-based, so valid selectors for three shards are
    ``0/3``, ``1/3`` and ``2/3``.
    """
    if isinstance(shard, str):
        head, sep, tail = shard.partition("/")
        try:
            if not sep:
                raise ValueError
            index, count = int(head), int(tail)
        except ValueError:
            raise ConfigurationError(
                f"shard must look like I/N (e.g. 0/4), got {shard!r}"
            ) from None
    else:
        try:
            index, count = shard
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"shard must be an 'I/N' string or an (index, count) "
                f"pair, got {shard!r}"
            ) from None
    if count <= 0:
        raise ConfigurationError(f"shard count must be positive, got {count}")
    if not 0 <= index < count:
        raise ConfigurationError(
            f"shard index {index} out of range for {count} shards "
            f"(valid: 0..{count - 1})"
        )
    return index, count


def shard_index(config: ExperimentConfig, count: int) -> int:
    """The shard (of ``count``) a config deterministically lands in."""
    if count <= 0:
        raise ConfigurationError(f"shard count must be positive, got {count}")
    return int(config.fingerprint(), 16) % count


def partition(configs, count: int) -> list:
    """Split a grid into ``count`` shards, preserving grid order.

    Returns a list of ``count`` tuples; every config appears in exactly
    one (conservation is what makes a sharded sweep stitch back into
    the full grid).
    """
    shards = [[] for _ in range(max(1, count))]
    if count <= 0:
        raise ConfigurationError(f"shard count must be positive, got {count}")
    for config in configs:
        shards[shard_index(config, count)].append(config)
    return [tuple(shard) for shard in shards]


def partition_chunks(configs, chunk_size: int) -> list:
    """Split a grid into hash-stable chunks of roughly ``chunk_size``.

    The distributed executor's work unit: the grid partitions into
    ``ceil(len(configs) / chunk_size)`` hash shards (so a config's
    chunk depends only on its own fingerprint and the grid size, never
    on grid order), then empty shards drop out.  Returns a list of
    non-empty config tuples; every config appears in exactly one.
    Hash partitioning keeps chunk membership stable when the same grid
    is re-expanded by a resumed coordinator.
    """
    if chunk_size <= 0:
        raise ConfigurationError(
            f"chunk size must be positive, got {chunk_size}"
        )
    configs = tuple(configs)
    if not configs:
        return []
    count = -(-len(configs) // chunk_size)
    return [chunk for chunk in partition(configs, count) if chunk]


def select_shard(configs, shard) -> tuple:
    """The subset of a grid belonging to one shard, in grid order.

    ``shard`` is anything :func:`parse_shard` accepts.
    """
    index, count = parse_shard(shard)
    return tuple(
        config for config in configs if shard_index(config, count) == index
    )
