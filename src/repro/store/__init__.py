"""Persistent experiment store and sharded, resumable sweeps.

Two pieces:

* :mod:`repro.store.store` — :class:`Store`, an on-disk store of
  completed experiments content-addressed by config hash, with atomic
  writes, version orphaning and corruption quarantine;
* :mod:`repro.store.sharding` — deterministic config-hash partitioning
  of sweep grids, so N coordinator-free processes fill one store and a
  resumed pass stitches the full result set with zero recomputation.

Quickstart::

    from repro.api import Engine, ExperimentConfig
    from repro.store import Store

    engine = Engine(store=Store("results/"))
    grid = ExperimentConfig(slices=50).sweep(
        arch=["Baseline-PIM", "HH-PIM"],
        scenario=["case1", "case3"],
    )
    engine.run_many(grid)     # computes + persists
    engine.run_many(grid)     # pure store hits: zero recomputation

From the shell the same store backs ``repro sweep --store DIR
[--shard I/N] [--resume]`` and ``repro store {info,ls,clear}``.
"""

from .sharding import (
    parse_shard,
    partition,
    partition_chunks,
    select_shard,
    shard_index,
)
from .store import (
    KINDS,
    STORE_VERSION,
    Store,
    StoreStats,
    default_store_dir,
    record_kind,
    temporary_store_dir,
)

__all__ = [
    "KINDS",
    "STORE_VERSION",
    "Store",
    "StoreStats",
    "default_store_dir",
    "record_kind",
    "temporary_store_dir",
    "parse_shard",
    "partition",
    "partition_chunks",
    "select_shard",
    "shard_index",
]
