"""Persistent, content-addressed experiment store.

Where :mod:`repro.core.lutcache` persists *LUT builds*, this module
persists *finished experiments*: every completed run — a
:class:`~repro.api.results.RunRecord`, a
:class:`~repro.api.results.FleetRecord` or a
:class:`~repro.qos.slo.QoSResult` — lands on disk addressed by the
SHA-256 of its canonicalised :class:`~repro.api.config.ExperimentConfig`
(:meth:`~repro.api.config.ExperimentConfig.fingerprint`).  A sweep that
dies halfway resumes with zero recomputation; N shard processes fill one
store concurrently and a final pass stitches the complete
:class:`~repro.api.results.ResultSet` back together bit for bit (see
:mod:`repro.store.sharding`).

The store reuses the conventions that made the LUT cache trustworthy:

* **Content addressing.**  Keys come from
  :func:`repro.core.lutcache.fingerprint` over the config's dict form
  (minus ``lut_cache``, which never changes results), prefixed with the
  record kind — ``run``, ``fleet`` or ``qos`` — so the three result
  shapes of one config never collide.
* **Versioning.**  Entries live under ``v{STORE_VERSION}`` and embed the
  version + key in their payload; bumping :data:`STORE_VERSION` after a
  result-affecting change orphans stale entries with no migration.
* **Atomic writes.**  Payloads are pickled to a unique temp file and
  ``os.replace``d into place, so shard workers racing on one store never
  expose a partial entry.
* **Corruption quarantine.**  An entry that fails to unpickle or whose
  payload disagrees with its address is *moved aside* into
  ``quarantine/`` (not deleted — the bytes may matter for diagnosis),
  counted in :attr:`Store.stats`, and treated as a miss.

The default location is ``$REPRO_STORE`` when set, else
``$XDG_CACHE_HOME/repro-hhpim/store``; the CLI exposes it as
``repro store {info,ls,clear}`` and ``repro sweep --store DIR``.
"""

from __future__ import annotations

import os
import pickle
import uuid
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path

from ..api.config import ExperimentConfig
from ..api.results import FleetRecord, ResultSet, RunRecord
from ..core import lutcache
from ..errors import ConfigurationError
from ..obs import events as _events
from ..obs.tracing import span as _span

#: Bump when a change alters what stored payloads contain or mean.
STORE_VERSION = 1

#: The record kinds the store holds: the three result shapes one config
#: can produce, plus ``fuzz`` regression entries persisted by the
#: invariant harness (see :mod:`repro.fuzz`).
KINDS = ("run", "fleet", "qos", "fuzz")


@dataclass
class StoreStats:
    """Observable behaviour of one :class:`Store` (tests assert on it)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_failures: int = 0
    quarantined: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.writes = 0
        self.write_failures = self.quarantined = 0


def default_store_dir() -> Path:
    """The store root: ``$REPRO_STORE`` or the XDG cache default."""
    override = os.environ.get("REPRO_STORE", "").strip()
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-hhpim" / "store"


@contextmanager
def temporary_store_dir(path):
    """Point the default store at ``path`` for the enclosed block.

    Routes through ``REPRO_STORE`` (restored on exit) so subprocesses —
    CLI invocations under test, shard workers — inherit the redirection.
    """
    previous = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE"] = str(path)
    try:
        yield Path(path)
    finally:
        if previous is None:
            os.environ.pop("REPRO_STORE", None)
        else:
            os.environ["REPRO_STORE"] = previous


def record_kind(config: ExperimentConfig) -> str:
    """The batch record kind a config produces: ``run`` or ``fleet``."""
    return "fleet" if config.fleet > 1 else "run"


class Store:
    """An on-disk, content-addressed store of completed experiments.

    One directory is one store; any number of processes may read and
    write it concurrently.  ``get``/``put`` address single results by
    config, ``query`` reloads a filtered :class:`ResultSet` (it and
    :func:`repro.analysis.sweeps.render_store` back ``repro store
    ls``), and ``info``/``clear`` back the other CLI actions.
    """

    def __init__(self, root=None) -> None:
        """Open (lazily creating) the store at ``root``.

        ``None`` selects :func:`default_store_dir`, so ``Store()`` is
        the machine-wide store the CLI uses.
        """
        self.root = Path(root).expanduser() if root is not None else (
            default_store_dir()
        )
        self.stats = StoreStats()

    # -- addressing -------------------------------------------------------------

    def _version_dir(self) -> Path:
        return self.root / f"v{STORE_VERSION}"

    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def key_for(self, config: ExperimentConfig, kind: str | None = None) -> str:
        """The entry key of a config: ``<kind>-<sha256>``."""
        kind = record_kind(config) if kind is None else kind
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown store record kind {kind!r}; known: {', '.join(KINDS)}"
            )
        return f"{kind}-{config.fingerprint()}"

    def _entry_path(self, key: str) -> Path:
        return self._version_dir() / f"{key}.pkl"

    # -- read -------------------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never deleting evidence)."""
        target = self._quarantine_dir() / f"{path.name}.{uuid.uuid4().hex}"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            self.stats.quarantined += 1
        except OSError:
            return
        _events.emit(
            "store_quarantine", path=str(path), reason="corrupt_entry"
        )

    def _load_payload(self, path: Path):
        """The validated payload at ``path``, or ``None`` (quarantining
        anything unreadable or inconsistent with its address)."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated, unpicklable, wrong format: quarantine the bytes.
            self._quarantine(path)
            return None
        key = path.name[: -len(".pkl")]
        if (
            not isinstance(payload, dict)
            or payload.get("version") != STORE_VERSION
            or payload.get("key") != key
            or "record" not in payload
        ):
            self._quarantine(path)
            return None
        return payload

    def get(self, config: ExperimentConfig, kind: str | None = None):
        """The stored record for a config, or ``None`` on any miss.

        ``kind`` defaults to the batch kind the config produces
        (``fleet`` when ``config.fleet > 1``, else ``run``); pass
        ``"qos"`` — or use :meth:`get_qos` — for request-level results.
        """
        with _span("store.get") as trace_span:
            payload = self._load_payload(
                self._entry_path(self.key_for(config, kind))
            )
            if payload is None:
                self.stats.misses += 1
                trace_span.annotate(hit=False)
                return None
            self.stats.hits += 1
            trace_span.annotate(hit=True)
            return payload["record"]

    def get_qos(self, config: ExperimentConfig):
        """The stored :class:`~repro.qos.slo.QoSResult`, or ``None``."""
        return self.get(config, kind="qos")

    def __contains__(self, config: ExperimentConfig) -> bool:
        """Whether the config's batch record is stored (no unpickling)."""
        return self._entry_path(self.key_for(config)).is_file()

    # -- write ------------------------------------------------------------------

    def _write(self, key: str, payload: dict) -> bool:
        with _span("store.put", kind=payload.get("kind")) as trace_span:
            ok = self._write_entry(key, payload)
            trace_span.annotate(ok=ok)
        return ok

    def _write_entry(self, key: str, payload: dict) -> bool:
        path = self._entry_path(key)
        temp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(temp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
        except Exception:
            # Unwritable directory, full disk, *or* an unpicklable record
            # (user-registered specs can carry anything): the contract is
            # degrade-to-recomputation, never crash a finished sweep.
            self.stats.write_failures += 1
            try:
                temp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.stats.writes += 1
        return True

    def put(self, record, engine_stats=None) -> bool:
        """Persist a completed :class:`RunRecord`/:class:`FleetRecord`.

        Besides the record itself, the payload embeds the config's dict
        form, the flat metric row, and an optional snapshot of the
        producing engine's stats — entries stay self-describing to
        external tooling that reads the pickles without this library.
        Returns ``False`` when the write failed (an unwritable store or
        unpicklable record degrades to recomputation, never to an
        error).
        """
        if not isinstance(record, (RunRecord, FleetRecord)):
            raise ConfigurationError(
                f"store holds RunRecord/FleetRecord entries, "
                f"got {type(record).__name__}"
            )
        kind = "fleet" if isinstance(record, FleetRecord) else "run"
        key = self.key_for(record.config, kind)
        return self._write(key, {
            "version": STORE_VERSION,
            "key": key,
            "kind": kind,
            "config": record.config.to_dict(),
            "row": record.to_row(),
            "record": record,
            "engine_stats": (
                asdict(engine_stats) if engine_stats is not None else None
            ),
        })

    def put_qos(self, config: ExperimentConfig, result,
                engine_stats=None) -> bool:
        """Persist a :class:`~repro.qos.slo.QoSResult` under its config."""
        key = self.key_for(config, "qos")
        return self._write(key, {
            "version": STORE_VERSION,
            "key": key,
            "kind": "qos",
            "config": config.to_dict(),
            "row": {
                "arch": config.arch,
                "model": config.model,
                "scenario": config.scenario,
                "devices": config.fleet,
                "qos": config.qos,
                "autoscaler": config.autoscaler,
                "completed": result.completed,
                "slo_attainment": result.slo_attainment,
                "total_energy_nj": result.total_energy_nj,
            },
            "record": result,
            "engine_stats": (
                asdict(engine_stats) if engine_stats is not None else None
            ),
        })

    def put_fuzz(self, entry: dict) -> str | None:
        """Persist a fuzz regression entry; returns its key, or ``None``.

        ``entry`` is the plain dict the invariant harness builds (see
        :func:`repro.fuzz.run_fuzz`): at minimum a ``"case"`` dict (the
        shrunk :class:`~repro.fuzz.FuzzCase` in serialized form) and the
        ``"invariant"`` it violates.  The key is content-addressed over
        the case dict, so re-finding the same minimal case is
        idempotent.  A failed write degrades to ``None`` (same contract
        as :meth:`put`).
        """
        case = entry.get("case")
        if not isinstance(case, dict) or not entry.get("invariant"):
            raise ConfigurationError(
                "fuzz entry needs a 'case' dict and an 'invariant' name"
            )
        key = f"fuzz-{lutcache.fingerprint('fuzz', case)}"
        ok = self._write(key, {
            "version": STORE_VERSION,
            "key": key,
            "kind": "fuzz",
            "config": None,
            "row": {
                "seed": case.get("case_seed"),
                "invariant": entry["invariant"],
                "program": entry.get("program_label", ""),
                "arch": case.get("arch", ""),
                "model": case.get("model", ""),
                "slices": case.get("slices"),
            },
            "record": dict(entry),
            "engine_stats": None,
        })
        return key if ok else None

    # -- enumeration ------------------------------------------------------------

    def _entries(self):
        root = self._version_dir()
        if not root.is_dir():
            return
        yield from sorted(root.glob("*.pkl"))

    def keys(self) -> list:
        """Every stored entry key (current version), sorted."""
        return [path.name[: -len(".pkl")] for path in self._entries()]

    def query(self, predicate=None, kind: str | None = None,
              limit: int | None = None, **axes) -> ResultSet:
        """Reload stored batch records as a :class:`ResultSet`.

        Accepts the same axis keywords and predicate as
        :meth:`ResultSet.filter`; ``qos`` entries are excluded (they are
        not batch records — fetch them with :meth:`get_qos`, or list
        their summary rows with :meth:`qos_rows`).  ``kind`` restricts
        the result to one record kind (``run`` or ``fleet``) and
        ``limit`` keeps only the first ``limit`` records *after*
        sorting and filtering.  Records come back sorted by config
        fingerprint then key — a total order derived from content
        hashes, never from directory listing order — so two processes
        querying one store (on any filesystem) see the same records in
        the same order, and ``--limit N`` truncates to the same N.

        ``kind="fuzz"`` is the one non-batch kind this method serves:
        fuzz regression entries are plain dicts, not records, so the
        call returns a sorted ``list`` of entry dicts (``predicate``
        and ``limit`` still apply; axis keywords are rejected).
        """
        if kind == "fuzz":
            if axes:
                raise ConfigurationError(
                    "fuzz entries are not batch records and accept no "
                    f"axis filters, got {sorted(axes)!r}"
                )
            return self.fuzz_entries(predicate=predicate, limit=limit)
        if kind is not None and kind not in ("run", "fleet"):
            raise ConfigurationError(
                f"query kind must be 'run', 'fleet' or 'fuzz' (qos "
                f"entries are not batch records; see Store.qos_rows), "
                f"got {kind!r}"
            )
        if limit is not None and limit < 0:
            raise ConfigurationError(
                f"query limit must be non-negative, got {limit!r}"
            )
        records = []
        for path in list(self._entries()):
            if path.name.startswith(("qos-", "fuzz-")):
                continue
            if kind is not None and not path.name.startswith(f"{kind}-"):
                continue
            payload = self._load_payload(path)
            if payload is None:
                continue
            # The key is "<kind>-<fingerprint>"; order by fingerprint
            # first so run/fleet records of one config sit together.
            fingerprint = payload["key"].split("-", 1)[1]
            records.append((fingerprint, payload["key"], payload["record"]))
        records.sort(key=lambda item: (item[0], item[1]))
        results = ResultSet(record for _, _, record in records)
        if predicate is not None or axes:
            results = results.filter(predicate, **axes)
        if limit is not None:
            results = ResultSet(tuple(results)[:limit])
        return results

    def qos_rows(self, limit: int | None = None) -> list:
        """The stored QoS entries' flat summary rows, sorted by key.

        Each row is the plain dict :meth:`put_qos` embedded alongside
        the pickled result (arch, model, scenario, devices, discipline,
        autoscaler, completed, SLO attainment, total energy) — enough
        for a listing without unpickling full per-window series into a
        :class:`~repro.qos.slo.QoSResult`.  ``limit`` keeps only the
        first ``limit`` rows of the sorted set.
        """
        if limit is not None and limit < 0:
            raise ConfigurationError(
                f"qos_rows limit must be non-negative, got {limit!r}"
            )
        rows = []
        for path in list(self._entries()):
            if not path.name.startswith("qos-"):
                continue
            payload = self._load_payload(path)
            if payload is None or not isinstance(payload.get("row"), dict):
                continue
            rows.append((payload["key"], payload["row"]))
        rows.sort(key=lambda item: item[0])
        if limit is not None:
            rows = rows[:limit]
        return [row for _, row in rows]

    def fuzz_entries(self, predicate=None, limit: int | None = None) -> list:
        """The stored fuzz regression entries, sorted by key.

        Each element is the full dict :meth:`put_fuzz` persisted (the
        serialized minimal case, the violated invariant, its detail
        string, and the original pre-shrink case), with the store key
        attached under ``"key"``.  ``predicate`` filters entries after
        sorting; ``limit`` keeps the first ``limit`` survivors — the
        same order every process sees, so replay is deterministic.
        """
        if limit is not None and limit < 0:
            raise ConfigurationError(
                f"fuzz_entries limit must be non-negative, got {limit!r}"
            )
        entries = []
        for path in list(self._entries()):
            if not path.name.startswith("fuzz-"):
                continue
            payload = self._load_payload(path)
            if payload is None or not isinstance(payload.get("record"), dict):
                continue
            entry = dict(payload["record"])
            entry["key"] = payload["key"]
            entries.append((payload["key"], entry))
        entries.sort(key=lambda item: item[0])
        results = [entry for _, entry in entries]
        if predicate is not None:
            results = [entry for entry in results if predicate(entry)]
        if limit is not None:
            results = results[:limit]
        return results

    def fuzz_rows(self, limit: int | None = None) -> list:
        """The stored fuzz entries' flat summary rows, sorted by key.

        Each row is the plain dict :meth:`put_fuzz` embedded alongside
        the full entry (case seed, violated invariant, program label,
        arch, model, slices) — enough for ``repro store ls --kind
        fuzz`` without reloading whole entries.  ``limit`` keeps only
        the first ``limit`` rows of the sorted set.
        """
        if limit is not None and limit < 0:
            raise ConfigurationError(
                f"fuzz_rows limit must be non-negative, got {limit!r}"
            )
        rows = []
        for path in list(self._entries()):
            if not path.name.startswith("fuzz-"):
                continue
            payload = self._load_payload(path)
            if payload is None or not isinstance(payload.get("row"), dict):
                continue
            rows.append((payload["key"], payload["row"]))
        rows.sort(key=lambda item: item[0])
        if limit is not None:
            rows = rows[:limit]
        return [row for _, row in rows]

    # -- maintenance ------------------------------------------------------------

    def info(self) -> dict:
        """A serialisable snapshot for ``repro store info``."""
        sizes = []
        kinds = dict.fromkeys(KINDS, 0)
        for path in self._entries():
            try:
                sizes.append(path.stat().st_size)
            except OSError:
                continue
            prefix = path.name.split("-", 1)[0]
            if prefix in kinds:
                kinds[prefix] += 1
            else:
                # A stray file in the version dir is not ours to crash
                # over; the read path will quarantine it on contact.
                kinds["unrecognized"] = kinds.get("unrecognized", 0) + 1
        quarantined = (
            len(list(self._quarantine_dir().glob("*")))
            if self._quarantine_dir().is_dir()
            else 0
        )
        return {
            "path": str(self.root),
            "version": STORE_VERSION,
            "entries": len(sizes),
            "by_kind": kinds,
            "bytes": sum(sizes),
            "quarantined": quarantined,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "writes": self.stats.writes,
        }

    def clear(self) -> int:
        """Delete every entry (all versions + quarantine); the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for sub in list(self.root.glob("v*")) + [self._quarantine_dir()]:
            if not sub.is_dir():
                continue
            for entry in list(sub.iterdir()):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Store({str(self.root)!r})"
