"""Binary word format of PIM instructions.

Every PIM instruction is one 32-bit word with the following fields, from
most- to least-significant bit::

    [31:29] category       one of Category (3 bits)
    [28]    cluster        0 = HP cluster, 1 = LP cluster
    [27:24] module         module index within the cluster; 0xF = broadcast
    [23:20] opcode         operation within the category
    [19:0]  immediate      address / operand payload (20 bits)

The *category* drives the controller's instruction decoder ("Category" in
Fig. 2 of the paper), *cluster* + *module* form the Module Select Signal,
and *opcode* + *immediate* form the Instruction Field.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..errors import DecodingError, EncodingError

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


class Category(IntEnum):
    """Top-level instruction categories handled by the PIM controllers."""

    COMPUTE = 0
    LOAD = 1
    STORE = 2
    MOVE = 3
    SYNC = 4
    CONFIG = 5
    HALT = 6


class ClusterId(IntEnum):
    """The two heterogeneous clusters of HH-PIM."""

    HP = 0
    LP = 1

    @property
    def other(self) -> "ClusterId":
        """The opposite cluster (used by inter-cluster MOVEs)."""
        return ClusterId.LP if self is ClusterId.HP else ClusterId.HP


@dataclass(frozen=True)
class _Field:
    """One bit-field of the instruction word."""

    name: str
    shift: int
    width: int

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def insert(self, value: int) -> int:
        if not 0 <= value <= self.mask:
            raise EncodingError(
                f"field {self.name}: value {value} does not fit in "
                f"{self.width} bits"
            )
        return value << self.shift

    def extract(self, word: int) -> int:
        return (word >> self.shift) & self.mask


#: The instruction word layout, as documented in the module docstring.
FIELD_LAYOUT = {
    "category": _Field("category", 29, 3),
    "cluster": _Field("cluster", 28, 1),
    "module": _Field("module", 24, 4),
    "opcode": _Field("opcode", 20, 4),
    "immediate": _Field("immediate", 0, 20),
}


def encode_fields(
    category: Category,
    cluster: ClusterId,
    module: int,
    opcode: int,
    immediate: int,
) -> int:
    """Pack the five fields into one 32-bit instruction word."""
    word = 0
    word |= FIELD_LAYOUT["category"].insert(int(category))
    word |= FIELD_LAYOUT["cluster"].insert(int(cluster))
    word |= FIELD_LAYOUT["module"].insert(module)
    word |= FIELD_LAYOUT["opcode"].insert(opcode)
    word |= FIELD_LAYOUT["immediate"].insert(immediate)
    return word


def decode_word(word: int) -> dict:
    """Unpack an instruction word into its raw field values."""
    if not 0 <= word <= WORD_MASK:
        raise DecodingError(f"instruction word {word:#x} is not 32-bit")
    raw_category = FIELD_LAYOUT["category"].extract(word)
    try:
        category = Category(raw_category)
    except ValueError:
        raise DecodingError(
            f"word {word:#010x}: unknown category {raw_category}"
        ) from None
    return {
        "category": category,
        "cluster": ClusterId(FIELD_LAYOUT["cluster"].extract(word)),
        "module": FIELD_LAYOUT["module"].extract(word),
        "opcode": FIELD_LAYOUT["opcode"].extract(word),
        "immediate": FIELD_LAYOUT["immediate"].extract(word),
    }
