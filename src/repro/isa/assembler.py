"""Tiny text assembler for PIM programs.

The examples and the RISC-V driver kernels express PIM command streams in
a one-instruction-per-line assembly dialect::

    # comments start with '#'
    load    hp.0  mram=16 sram=16     ; fetch operands into the PE
    mac     hp.0  count=32            ; run 32 MAC steps
    emit    hp.0
    store   hp.0  addr=0x10000
    move    hp.0  dst=2 block=5 count=64
    sync    hp.*                      ; barrier over the whole HP cluster
    gate_off lp.1 target=sram
    halt    hp.0

Module references are ``<cluster>.<index>`` with ``hp``/``lp`` clusters and
``*`` for broadcast.  Keyword operands may appear in any order.
"""

from __future__ import annotations

from ..errors import AssemblerError
from .encoding import ClusterId
from .instructions import (
    BROADCAST_MODULE,
    Compute,
    ComputeOp,
    Config,
    ConfigOp,
    GateTarget,
    Halt,
    LoadOperands,
    Move,
    PimInstruction,
    StoreResult,
    Sync,
)

_MNEMONICS = {
    "mac",
    "clear",
    "emit",
    "load",
    "store",
    "move",
    "sync",
    "gate_on",
    "gate_off",
    "halt",
}


def _parse_target(token: str, line_no: int) -> tuple:
    """Parse a ``cluster.module`` reference."""
    try:
        cluster_name, module_name = token.split(".")
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: expected <cluster>.<module>, got {token!r}"
        ) from None
    try:
        cluster = ClusterId[cluster_name.upper()]
    except KeyError:
        raise AssemblerError(
            f"line {line_no}: unknown cluster {cluster_name!r}"
        ) from None
    if module_name == "*":
        return cluster, BROADCAST_MODULE
    try:
        module = int(module_name, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: bad module index {module_name!r}"
        ) from None
    return cluster, module


def _parse_kwargs(tokens, line_no: int) -> dict:
    """Parse ``key=value`` operand tokens."""
    kwargs = {}
    for token in tokens:
        if "=" not in token:
            raise AssemblerError(
                f"line {line_no}: expected key=value operand, got {token!r}"
            )
        key, _, value = token.partition("=")
        kwargs[key] = value
    return kwargs


def _to_int(kwargs: dict, key: str, default: int, line_no: int) -> int:
    raw = kwargs.pop(key, None)
    if raw is None:
        return default
    try:
        return int(raw, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: operand {key}={raw!r} is not an integer"
        ) from None


def assemble_line(line: str, line_no: int = 0) -> PimInstruction | None:
    """Assemble one line; returns None for blank/comment lines."""
    code = line.split("#", 1)[0].split(";", 1)[0].strip()
    if not code:
        return None
    tokens = code.split()
    mnemonic = tokens[0].lower()
    if mnemonic not in _MNEMONICS:
        raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
    if len(tokens) < 2:
        raise AssemblerError(f"line {line_no}: {mnemonic} needs a target")
    cluster, module = _parse_target(tokens[1], line_no)
    kwargs = _parse_kwargs(tokens[2:], line_no)

    instruction: PimInstruction
    if mnemonic in ("mac", "clear", "emit"):
        op = {"mac": ComputeOp.MAC, "clear": ComputeOp.CLEAR,
              "emit": ComputeOp.EMIT}[mnemonic]
        count = _to_int(kwargs, "count", 1 if mnemonic == "mac" else 0, line_no)
        instruction = Compute(cluster, module, op=op, count=count)
    elif mnemonic == "load":
        instruction = LoadOperands(
            cluster,
            module,
            mram_count=_to_int(kwargs, "mram", 0, line_no),
            sram_count=_to_int(kwargs, "sram", 0, line_no),
        )
    elif mnemonic == "store":
        instruction = StoreResult(
            cluster, module, address=_to_int(kwargs, "addr", 0, line_no)
        )
    elif mnemonic == "move":
        instruction = Move(
            cluster,
            module,
            dst_module=_to_int(kwargs, "dst", 0, line_no),
            block=_to_int(kwargs, "block", 0, line_no),
            count=_to_int(kwargs, "count", 1, line_no),
        )
    elif mnemonic == "sync":
        instruction = Sync(cluster, module)
    elif mnemonic in ("gate_on", "gate_off"):
        target_name = kwargs.pop("target", "all")
        try:
            target = GateTarget[target_name.upper()]
        except KeyError:
            raise AssemblerError(
                f"line {line_no}: unknown gate target {target_name!r}"
            ) from None
        op = ConfigOp.GATE_ON if mnemonic == "gate_on" else ConfigOp.GATE_OFF
        instruction = Config(cluster, module, op=op, target=target)
    else:  # halt
        instruction = Halt(cluster, module)

    if kwargs:
        raise AssemblerError(
            f"line {line_no}: unexpected operands {sorted(kwargs)}"
        )
    return instruction


def assemble(source: str):
    """Assemble a whole program; returns a list of typed instructions."""
    program = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        instruction = assemble_line(line, line_no)
        if instruction is not None:
            program.append(instruction)
    return program


def disassemble(instruction: PimInstruction) -> str:
    """Render a typed instruction back to its assembly form."""
    module = "*" if instruction.module == BROADCAST_MODULE else str(
        instruction.module
    )
    target = f"{instruction.cluster.name.lower()}.{module}"
    if isinstance(instruction, Compute):
        mnemonic = {ComputeOp.MAC: "mac", ComputeOp.CLEAR: "clear",
                    ComputeOp.EMIT: "emit"}[instruction.op]
        suffix = f" count={instruction.count}" if instruction.op is ComputeOp.MAC else ""
        return f"{mnemonic} {target}{suffix}"
    if isinstance(instruction, LoadOperands):
        return (
            f"load {target} mram={instruction.mram_count} "
            f"sram={instruction.sram_count}"
        )
    if isinstance(instruction, StoreResult):
        return f"store {target} addr={instruction.address:#x}"
    if isinstance(instruction, Move):
        return (
            f"move {target} dst={instruction.dst_module} "
            f"block={instruction.block} count={instruction.count}"
        )
    if isinstance(instruction, Sync):
        return f"sync {target}"
    if isinstance(instruction, Config):
        mnemonic = "gate_on" if instruction.op is ConfigOp.GATE_ON else "gate_off"
        return f"{mnemonic} {target} target={instruction.target.name.lower()}"
    if isinstance(instruction, Halt):
        return f"halt {target}"
    raise AssemblerError(f"cannot disassemble {instruction!r}")
