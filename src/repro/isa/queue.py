"""The PIM Instruction Queue.

Commands from the processor core are "sequentially stored in the PIM
Instruction Queue" (paper, Section II); the two cluster controllers fetch
from it in order.  The queue is a bounded FIFO of 32-bit instruction
words — bounding it models the finite hardware buffer and gives the MMIO
bridge a back-pressure signal.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError, QueueEmptyError, QueueFullError
from .instructions import PimInstruction, decode


class InstructionQueue:
    """Bounded FIFO of PIM instruction words."""

    def __init__(self, depth: int = 64) -> None:
        if depth <= 0:
            raise ConfigurationError(f"queue depth must be positive, got {depth}")
        self.depth = depth
        self._words: deque = deque()
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._words)

    @property
    def full(self) -> bool:
        """Whether another push would overflow the hardware buffer."""
        return len(self._words) >= self.depth

    @property
    def empty(self) -> bool:
        """Whether a fetch would underflow."""
        return not self._words

    def push(self, instruction: PimInstruction) -> None:
        """Enqueue a typed instruction (encoded to its word form)."""
        self.push_word(instruction.encode())

    def push_word(self, word: int) -> None:
        """Enqueue a raw 32-bit instruction word."""
        if self.full:
            raise QueueFullError(
                f"instruction queue full (depth {self.depth})"
            )
        decode(word)  # validate eagerly: hardware rejects illegal words
        self._words.append(word)
        self.total_pushed += 1

    def pop(self) -> PimInstruction:
        """Fetch and decode the oldest instruction."""
        return decode(self.pop_word())

    def pop_word(self) -> int:
        """Fetch the oldest raw word."""
        if self.empty:
            raise QueueEmptyError("instruction queue empty")
        self.total_popped += 1
        return self._words.popleft()

    def peek(self) -> PimInstruction:
        """Decode the oldest instruction without removing it."""
        if self.empty:
            raise QueueEmptyError("instruction queue empty")
        return decode(self._words[0])

    def clear(self) -> None:
        """Drop all queued instructions (reset)."""
        self._words.clear()
