"""PIM instruction set: encodings, typed instructions, queue, assembler.

HH-PIM "operat[es] based on dedicated PIM instructions" delivered from the
processor core into a *PIM Instruction Queue* (paper, Section II).  This
package defines a compact 32-bit instruction word, typed instruction
classes with a lossless encode/decode round-trip, the bounded instruction
queue, and a small text assembler used by the examples and the RISC-V
driver programs.
"""

from .encoding import (
    Category,
    ClusterId,
    FIELD_LAYOUT,
    decode_word,
    encode_fields,
)
from .instructions import (
    BROADCAST_MODULE,
    Compute,
    ComputeOp,
    Config,
    ConfigOp,
    GateTarget,
    Halt,
    LoadOperands,
    Move,
    PimInstruction,
    StoreResult,
    Sync,
    decode,
)
from .queue import InstructionQueue
from .assembler import assemble, assemble_line, disassemble

__all__ = [
    "Category",
    "ClusterId",
    "FIELD_LAYOUT",
    "decode_word",
    "encode_fields",
    "BROADCAST_MODULE",
    "Compute",
    "ComputeOp",
    "Config",
    "ConfigOp",
    "GateTarget",
    "Halt",
    "LoadOperands",
    "Move",
    "PimInstruction",
    "StoreResult",
    "Sync",
    "decode",
    "InstructionQueue",
    "assemble",
    "assemble_line",
    "disassemble",
]
