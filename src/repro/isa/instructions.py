"""Typed PIM instructions with a lossless encode/decode round-trip.

Each class mirrors one category of :class:`~repro.isa.encoding.Category`
and knows how to pack itself into the 32-bit word format and back.  The
controller's instruction decoder (Fig. 2) consumes these objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..errors import DecodingError, EncodingError
from .encoding import Category, ClusterId, decode_word, encode_fields

#: Module index that addresses every module of a cluster at once.
BROADCAST_MODULE = 0xF


class ComputeOp(IntEnum):
    """Operations of the COMPUTE category."""

    MAC = 0  #: multiply-accumulate over previously loaded operand pairs
    CLEAR = 1  #: zero the PE accumulator
    EMIT = 2  #: requantize the accumulator into an INT8 result


class ConfigOp(IntEnum):
    """Operations of the CONFIG category (power management)."""

    GATE_OFF = 0  #: power-gate a component
    GATE_ON = 1  #: un-gate a component


class GateTarget(IntEnum):
    """Component selector carried in a CONFIG instruction's immediate."""

    MRAM = 0
    SRAM = 1
    PE = 2
    ALL = 3


@dataclass(frozen=True)
class PimInstruction:
    """Base class: every PIM instruction targets (cluster, module)."""

    cluster: ClusterId
    module: int

    def _check_module(self) -> None:
        if not 0 <= self.module <= BROADCAST_MODULE:
            raise EncodingError(f"module index {self.module} outside [0, 15]")

    def encode(self) -> int:
        """Pack into the 32-bit instruction word."""
        raise NotImplementedError


@dataclass(frozen=True)
class Compute(PimInstruction):
    """COMPUTE: run ``count`` MAC steps (or CLEAR / EMIT) on a module's PE."""

    op: ComputeOp = ComputeOp.MAC
    count: int = 1

    def encode(self) -> int:
        self._check_module()
        if not 0 <= self.count < (1 << 20):
            raise EncodingError(f"MAC count {self.count} does not fit in 20 bits")
        return encode_fields(
            Category.COMPUTE, self.cluster, self.module, int(self.op), self.count
        )


@dataclass(frozen=True)
class LoadOperands(PimInstruction):
    """LOAD: fetch operands from the module's MRAM and/or SRAM banks.

    The immediate packs the two operand counts (10 bits each); the module
    interface synchronises the two read streams, waiting for the slower
    bank — the paper's variable-operand LOAD behaviour.
    """

    mram_count: int = 0
    sram_count: int = 0

    def encode(self) -> int:
        self._check_module()
        for name, count in (
            ("mram_count", self.mram_count),
            ("sram_count", self.sram_count),
        ):
            if not 0 <= count < (1 << 10):
                raise EncodingError(f"{name} {count} does not fit in 10 bits")
        immediate = (self.mram_count << 10) | self.sram_count
        return encode_fields(
            Category.LOAD, self.cluster, self.module, 0, immediate
        )


@dataclass(frozen=True)
class StoreResult(PimInstruction):
    """STORE: write the PE's emitted result to a flat module address."""

    address: int = 0

    def encode(self) -> int:
        self._check_module()
        if not 0 <= self.address < (1 << 20):
            raise EncodingError(
                f"store address {self.address} does not fit in 20 bits"
            )
        return encode_fields(
            Category.STORE, self.cluster, self.module, 0, self.address
        )


@dataclass(frozen=True)
class Move(PimInstruction):
    """MOVE: transfer a data block to a module in the *opposite* cluster.

    The header names the source (cluster, module); the immediate packs the
    destination module (4 bits), a block index (8 bits) resolved by the
    controller's Address Generator, and a word count granule (8 bits).
    """

    dst_module: int = 0
    block: int = 0
    count: int = 1

    def encode(self) -> int:
        self._check_module()
        if not 0 <= self.dst_module <= BROADCAST_MODULE:
            raise EncodingError(
                f"destination module {self.dst_module} outside [0, 15]"
            )
        for name, value in (("block", self.block), ("count", self.count)):
            if not 0 <= value < (1 << 8):
                raise EncodingError(f"{name} {value} does not fit in 8 bits")
        immediate = (self.dst_module << 16) | (self.block << 8) | self.count
        return encode_fields(
            Category.MOVE, self.cluster, self.module, 0, immediate
        )

    @property
    def dst_cluster(self) -> ClusterId:
        """Inter-cluster MOVEs always target the opposite cluster."""
        return self.cluster.other


@dataclass(frozen=True)
class Sync(PimInstruction):
    """SYNC: barrier — wait until the addressed modules are idle."""

    def encode(self) -> int:
        self._check_module()
        return encode_fields(Category.SYNC, self.cluster, self.module, 0, 0)


@dataclass(frozen=True)
class Config(PimInstruction):
    """CONFIG: power-gate or un-gate a component of a module."""

    op: ConfigOp = ConfigOp.GATE_OFF
    target: GateTarget = GateTarget.ALL

    def encode(self) -> int:
        self._check_module()
        return encode_fields(
            Category.CONFIG, self.cluster, self.module, int(self.op),
            int(self.target),
        )


@dataclass(frozen=True)
class Halt(PimInstruction):
    """HALT: stop the controller after draining in-flight work."""

    def encode(self) -> int:
        return encode_fields(Category.HALT, self.cluster, self.module, 0, 0)


def decode(word: int) -> PimInstruction:
    """Decode a 32-bit word into its typed instruction."""
    fields = decode_word(word)
    category = fields["category"]
    cluster = fields["cluster"]
    module = fields["module"]
    opcode = fields["opcode"]
    immediate = fields["immediate"]
    if category is Category.COMPUTE:
        try:
            op = ComputeOp(opcode)
        except ValueError:
            raise DecodingError(f"unknown COMPUTE opcode {opcode}") from None
        return Compute(cluster, module, op=op, count=immediate)
    if category is Category.LOAD:
        return LoadOperands(
            cluster,
            module,
            mram_count=(immediate >> 10) & 0x3FF,
            sram_count=immediate & 0x3FF,
        )
    if category is Category.STORE:
        return StoreResult(cluster, module, address=immediate)
    if category is Category.MOVE:
        return Move(
            cluster,
            module,
            dst_module=(immediate >> 16) & 0xF,
            block=(immediate >> 8) & 0xFF,
            count=immediate & 0xFF,
        )
    if category is Category.SYNC:
        return Sync(cluster, module)
    if category is Category.CONFIG:
        try:
            op = ConfigOp(opcode)
            target = GateTarget(immediate)
        except ValueError:
            raise DecodingError(
                f"unknown CONFIG opcode/target {opcode}/{immediate}"
            ) from None
        return Config(cluster, module, op=op, target=target)
    if category is Category.HALT:
        return Halt(cluster, module)
    raise DecodingError(f"unhandled category {category}")
