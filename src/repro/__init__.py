"""HH-PIM: heterogeneous-hybrid processing-in-memory for edge AI.

A full reproduction of *"HH-PIM: Dynamic Optimization of Power and
Performance with Heterogeneous-Hybrid PIM for Edge AI Devices"*
(DAC 2025): the HH-PIM architecture model (clusters, modules, hybrid
MRAM/SRAM memories, dual controllers, PIM ISA), the dynamic
weight-placement optimizer (knapsack DP + allocation LUT), the
time-slice runtime, every substrate the evaluation needs (NVSim-style
memory estimation, RV32IM core, AXI/µNoC interconnect, FPGA resource
model), and the analysis layer that regenerates the paper's tables and
figures.

The front door is :mod:`repro.api`: string-keyed registries of
architectures, models, scenarios and placement policies; a frozen,
serialisable :class:`~repro.api.ExperimentConfig`; an
:class:`~repro.api.Engine` that memoizes allocation LUTs across runs and
batches grids over a process pool; and a :class:`~repro.api.ResultSet`
with filtering, aggregation and JSON/CSV export.

Quickstart
----------
>>> from repro.api import Engine, ExperimentConfig
>>> engine = Engine()
>>> result = engine.run(ExperimentConfig(scenario="case3"))
>>> result.deadlines_met
True
>>> results = engine.run_many(
...     ExperimentConfig(slices=20).sweep(arch=["Baseline-PIM", "HH-PIM"])
... )
>>> results.savings_vs("HH-PIM")  # doctest: +SKIP
{'Baseline-PIM': 0.62}

The lower-level constructors (:class:`TimeSliceRuntime`,
:class:`DataPlacementOptimizer`, :func:`scenario`, ...) remain public
and unchanged for callers that want to wire the pipeline by hand.
"""

from .arch.specs import (
    ArchitectureSpec,
    BASELINE_PIM,
    ClusterSpec,
    HETEROGENEOUS_PIM,
    HH_PIM,
    HYBRID_PIM,
    TABLE_I,
)
from .arch.processor import PimFabric, Processor
from .core.lut import AllocationLUT, Placement
from .core.placement import DataPlacementOptimizer, PlacementPolicy
from .core.runtime import (
    RunResult,
    SliceRecord,
    TimeSliceRuntime,
    default_time_slice_ns,
    scalar_runtime,
)
from .core.spaces import SpaceKind, StorageSpace
from .errors import ReproError
from .qos import Autoscaler, QoSResult, QoSSimulator, QueueDiscipline
from .serving import DispatchPolicy, Fleet, FleetResult
from .workloads.arrivals import ArrivalProcess
from .workloads.models import (
    EFFICIENTNET_B0,
    MOBILENET_V2,
    ModelSpec,
    RESNET_18,
    TABLE_IV,
    model_by_name,
)
from .workloads.scenarios import Scenario, ScenarioCase, scenario
from .api import (
    ARCHITECTURES,
    DISPATCH,
    Engine,
    ExperimentConfig,
    MODELS,
    POLICIES,
    ResultSet,
    RunRecord,
    SCENARIOS,
    register_architecture,
    register_model,
    register_scenario,
)
from .store import Store

__version__ = "1.2.0"

__all__ = [
    "ArchitectureSpec",
    "ClusterSpec",
    "BASELINE_PIM",
    "HETEROGENEOUS_PIM",
    "HYBRID_PIM",
    "HH_PIM",
    "TABLE_I",
    "PimFabric",
    "Processor",
    "AllocationLUT",
    "Placement",
    "DataPlacementOptimizer",
    "PlacementPolicy",
    "RunResult",
    "SliceRecord",
    "TimeSliceRuntime",
    "default_time_slice_ns",
    "scalar_runtime",
    "SpaceKind",
    "StorageSpace",
    "ReproError",
    "ArrivalProcess",
    "DispatchPolicy",
    "Fleet",
    "FleetResult",
    "Autoscaler",
    "QoSResult",
    "QoSSimulator",
    "QueueDiscipline",
    "EFFICIENTNET_B0",
    "MOBILENET_V2",
    "RESNET_18",
    "ModelSpec",
    "TABLE_IV",
    "model_by_name",
    "Scenario",
    "ScenarioCase",
    "scenario",
    "ARCHITECTURES",
    "MODELS",
    "SCENARIOS",
    "POLICIES",
    "DISPATCH",
    "Engine",
    "ExperimentConfig",
    "ResultSet",
    "RunRecord",
    "Store",
    "register_architecture",
    "register_model",
    "register_scenario",
    "__version__",
]
