"""HH-PIM: heterogeneous-hybrid processing-in-memory for edge AI.

A full reproduction of *"HH-PIM: Dynamic Optimization of Power and
Performance with Heterogeneous-Hybrid PIM for Edge AI Devices"*
(DAC 2025): the HH-PIM architecture model (clusters, modules, hybrid
MRAM/SRAM memories, dual controllers, PIM ISA), the dynamic
weight-placement optimizer (knapsack DP + allocation LUT), the
time-slice runtime, every substrate the evaluation needs (NVSim-style
memory estimation, RV32IM core, AXI/µNoC interconnect, FPGA resource
model), and the analysis layer that regenerates the paper's tables and
figures.

Quickstart
----------
>>> from repro import (HH_PIM, EFFICIENTNET_B0, TimeSliceRuntime,
...                    scenario, ScenarioCase)
>>> runtime = TimeSliceRuntime(HH_PIM, EFFICIENTNET_B0)
>>> result = runtime.run(scenario(ScenarioCase.PERIODIC_SPIKE))
>>> result.deadlines_met
True
"""

from .arch.specs import (
    ArchitectureSpec,
    BASELINE_PIM,
    ClusterSpec,
    HETEROGENEOUS_PIM,
    HH_PIM,
    HYBRID_PIM,
    TABLE_I,
)
from .arch.processor import PimFabric, Processor
from .core.lut import AllocationLUT, Placement
from .core.placement import DataPlacementOptimizer, PlacementPolicy
from .core.runtime import (
    RunResult,
    SliceRecord,
    TimeSliceRuntime,
    default_time_slice_ns,
)
from .core.spaces import SpaceKind, StorageSpace
from .errors import ReproError
from .workloads.models import (
    EFFICIENTNET_B0,
    MOBILENET_V2,
    ModelSpec,
    RESNET_18,
    TABLE_IV,
    model_by_name,
)
from .workloads.scenarios import Scenario, ScenarioCase, scenario

__version__ = "1.0.0"

__all__ = [
    "ArchitectureSpec",
    "ClusterSpec",
    "BASELINE_PIM",
    "HETEROGENEOUS_PIM",
    "HYBRID_PIM",
    "HH_PIM",
    "TABLE_I",
    "PimFabric",
    "Processor",
    "AllocationLUT",
    "Placement",
    "DataPlacementOptimizer",
    "PlacementPolicy",
    "RunResult",
    "SliceRecord",
    "TimeSliceRuntime",
    "default_time_slice_ns",
    "SpaceKind",
    "StorageSpace",
    "ReproError",
    "EFFICIENTNET_B0",
    "MOBILENET_V2",
    "RESNET_18",
    "ModelSpec",
    "TABLE_IV",
    "model_by_name",
    "Scenario",
    "ScenarioCase",
    "scenario",
    "__version__",
]
