"""The serve wire protocol: length-prefixed JSON frames over TCP.

One message is one **frame**: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Every message is a JSON
object carrying ``"v"`` (the protocol version) and ``"type"`` (one of
:data:`REQUEST_TYPES` for requests; replies are ``"OK"``, a
request-specific payload type, or ``"ERROR"``).  Framing keeps the
protocol trivially parseable from any language — ``struct.pack(">I")``
plus ``json`` — while the version field lets a newer client fail fast
against an older daemon instead of misreading it.

Requests
--------
``SUBMIT``
    ``{"kind": "run"|"fleet"|"qos", "config": {...}, "records": bool}``
    — enqueue one experiment; the config dict is the
    :meth:`~repro.api.config.ExperimentConfig.to_dict` form.  Replies
    ``{"type": "SUBMITTED", "job_id": ...}``.  The optional ``trace``
    boolean asks the daemon to attach the job's span subtree (a list
    of :meth:`~repro.obs.tracing.Span.to_dict` records) to the job's
    ``RESULT`` reply under ``trace`` — present only when the daemon is
    tracing; frames omitting the field behave exactly as before.
``STATUS``
    ``{}`` for daemon-wide state (uptime, job counters, queue depth,
    engine stats) or ``{"job_id": ...}`` for one job's state.
``RESULT``
    ``{"job_id": ..., "wait": bool, "timeout": seconds}`` — fetch a
    completed job's payload, optionally blocking until it finishes.
``METRICS``
    ``{}`` — the current metrics registry rendered as InfluxDB line
    protocol (see :mod:`repro.service.telemetry`).
``DRAIN``
    ``{}`` — stop accepting submissions, finish every queued and
    in-flight job, then reply.
``SHUTDOWN``
    ``{}`` — drain, reply, and stop the daemon.
``PING``
    ``{}`` — liveness probe; replies ``{"type": "PONG"}``.

Distributed-sweep requests (v2, answered by the
:class:`~repro.dist.coordinator.SweepCoordinator`; the serve daemon
rejects them with a typed ``unsupported`` error)
--------------------------------------------------------------------
``CLAIM``
    ``{"worker": "w-..."}`` — ask for the next available chunk.
    Replies ``{"type": "CHUNK", "chunk": int, "configs": [...],
    "lease_s": float}`` with a lease on the chunk, ``{"type":
    "EMPTY", "done": bool, "retry_s": float}`` when nothing is
    currently claimable, or ``{"type": "EMPTY", "done": true}`` when
    the sweep has finished and the worker should exit.  A tracing
    coordinator sets ``"trace": true`` on CHUNK replies, asking the
    worker to record spans and ship them back.

All four sweep verbs accept an optional ``trace`` field — a list of
span records (:meth:`~repro.obs.tracing.Span.to_dict`) the worker
drained since its last request — which the coordinator merges into
the sweep-wide trace.  Both trace fields are optional in both
directions: a v2 peer that omits them interoperates unchanged, so no
version bump.
``HEARTBEAT``
    ``{"worker": ..., "chunk": int}`` — renew the chunk's lease.
    Replies ``OK``; a ``stale_lease`` error means another worker
    reclaimed the chunk and this worker must abandon it.
``PROGRESS``
    ``{"worker": ..., "chunk": int, "completed": int}`` — report
    configs finished so far in the chunk; renews the lease like
    ``HEARTBEAT`` and feeds the coordinator's live telemetry.
``COMPLETE``
    ``{"worker": ..., "chunk": int}`` — mark the chunk done and
    release its lease.  Replies ``OK`` with ``{"done": bool}``.

Errors are typed replies, never dropped connections::

    {"v": 2, "type": "ERROR", "code": "bad_config", "error": "..."}

with ``code`` one of :data:`ERROR_CODES`.  A job that raises inside the
daemon keeps the daemon serving: the failure surfaces as a
``job_failed`` error reply to the job's ``RESULT`` request.
"""

from __future__ import annotations

import json
import struct

from ..errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_TYPES",
    "DIST_TYPES",
    "SUBMIT_KINDS",
    "ERROR_CODES",
    "ConnectionClosed",
    "encode_frame",
    "decode_frame",
    "send_message",
    "recv_message",
    "request",
    "error_reply",
    "validate_request",
]

#: Bumped whenever a message's shape or meaning changes.
#: v2 added the distributed-sweep verbs (CLAIM/HEARTBEAT/PROGRESS/
#: COMPLETE) and the ``unknown_chunk``/``stale_lease``/``unsupported``
#: error codes.
PROTOCOL_VERSION = 2

#: Hard ceiling on one frame's JSON body; a length prefix beyond it is
#: treated as a corrupt stream, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Every request type a daemon must answer.
REQUEST_TYPES = (
    "SUBMIT", "STATUS", "RESULT", "METRICS", "DRAIN", "SHUTDOWN", "PING",
    "CLAIM", "HEARTBEAT", "PROGRESS", "COMPLETE",
)

#: The distributed-sweep verbs a coordinator answers (v2).
DIST_TYPES = ("CLAIM", "HEARTBEAT", "PROGRESS", "COMPLETE")

#: The experiment kinds a SUBMIT may carry (the store's record kinds).
SUBMIT_KINDS = ("run", "fleet", "qos")

#: Machine-readable error codes a typed ERROR reply may carry.
ERROR_CODES = (
    "bad_message",      # unparseable or malformed frame/fields
    "version_mismatch", # client and daemon disagree on PROTOCOL_VERSION
    "unknown_type",     # a type outside REQUEST_TYPES
    "bad_config",       # SUBMIT config failed validation
    "unknown_job",      # STATUS/RESULT for a job id never submitted
    "job_failed",       # RESULT for a job whose execution raised
    "job_pending",      # RESULT with wait=False for an unfinished job
    "draining",         # SUBMIT after a DRAIN/SHUTDOWN was accepted
    "unknown_chunk",    # HEARTBEAT/PROGRESS/COMPLETE for a chunk id
                        # the coordinator never handed out
    "stale_lease",      # the chunk's lease expired and was reclaimed
                        # by another worker; the sender must abandon it
    "unsupported",      # a valid v2 verb this daemon does not serve
                        # (e.g. CLAIM sent to the serve daemon)
)

_LENGTH = struct.Struct(">I")


class ConnectionClosed(ProtocolError):
    """The peer closed the socket cleanly between frames."""

    def __init__(self, message: str = "connection closed") -> None:
        super().__init__(message, code="bad_message")


# -- framing ----------------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    """Serialise one message dict into a length-prefixed frame."""
    try:
        body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            f"message is not JSON-serialisable: {error}"
        ) from error
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    """Parse one frame body back into its message dict."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def _recv_exact(sock, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                raise ConnectionClosed()
            raise ProtocolError(
                f"stream truncated: expected {count} more bytes, "
                f"peer closed after {count - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock, message: dict) -> None:
    """Write one message to a connected socket as a single frame."""
    sock.sendall(encode_frame(message))


def recv_message(sock) -> dict:
    """Read one framed message from a connected socket.

    Raises :class:`ConnectionClosed` on a clean EOF at a frame
    boundary and :class:`~repro.errors.ProtocolError` on anything
    torn or oversized.
    """
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return decode_frame(_recv_exact(sock, length))


# -- message construction ---------------------------------------------------------


def request(rtype: str, **fields) -> dict:
    """A versioned request message of the given type."""
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {rtype!r}; "
            f"known: {', '.join(REQUEST_TYPES)}",
            code="unknown_type",
        )
    return {"v": PROTOCOL_VERSION, "type": rtype, **fields}


def error_reply(code: str, message: str) -> dict:
    """A typed error reply carrying a machine-readable code."""
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    return {
        "v": PROTOCOL_VERSION, "type": "ERROR",
        "code": code, "error": message,
    }


def validate_request(message: dict) -> str:
    """Check version and type of an inbound request; returns the type.

    Raises :class:`~repro.errors.ProtocolError` with the error code a
    daemon should reply with (``version_mismatch``, ``unknown_type``
    or ``bad_message``).
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: daemon speaks "
            f"v{PROTOCOL_VERSION}, request carried {version!r}",
            code="version_mismatch",
        )
    rtype = message.get("type")
    if not isinstance(rtype, str):
        raise ProtocolError("request has no type field")
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {rtype!r}; "
            f"known: {', '.join(REQUEST_TYPES)}",
            code="unknown_type",
        )
    if rtype == "SUBMIT":
        kind = message.get("kind", "qos")
        if kind not in SUBMIT_KINDS:
            raise ProtocolError(
                f"unknown submit kind {kind!r}; "
                f"known: {', '.join(SUBMIT_KINDS)}",
            )
        if not isinstance(message.get("config"), dict):
            raise ProtocolError("SUBMIT needs a config object")
        if "trace" in message and not isinstance(message["trace"], bool):
            raise ProtocolError("SUBMIT trace must be a boolean")
    if rtype in ("RESULT",) and not isinstance(
        message.get("job_id"), str
    ):
        raise ProtocolError(f"{rtype} needs a job_id string")
    if rtype in DIST_TYPES and not isinstance(message.get("worker"), str):
        raise ProtocolError(f"{rtype} needs a worker string")
    if rtype in DIST_TYPES and "trace" in message:
        spans = message["trace"]
        if not isinstance(spans, list) or not all(
            isinstance(item, dict) for item in spans
        ):
            raise ProtocolError(
                f"{rtype} trace must be a list of span objects"
            )
    if rtype in ("HEARTBEAT", "PROGRESS", "COMPLETE"):
        chunk = message.get("chunk")
        if not isinstance(chunk, int) or isinstance(chunk, bool):
            raise ProtocolError(f"{rtype} needs an integer chunk id")
    if rtype == "PROGRESS":
        completed = message.get("completed")
        if (
            not isinstance(completed, int)
            or isinstance(completed, bool)
            or completed < 0
        ):
            raise ProtocolError(
                "PROGRESS needs a non-negative integer completed count"
            )
    return rtype
