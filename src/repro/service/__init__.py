"""The resident serving subsystem: daemon, wire protocol, telemetry.

``repro serve`` keeps one warm :class:`~repro.api.engine.Engine` (and
its LUT caches and experiment store) resident behind a localhost TCP
socket; ``repro submit``/``status``/``shutdown`` talk to it through
:class:`ServeClient`.  See :mod:`repro.service.protocol` for the wire
format, :mod:`repro.service.telemetry` for the line-protocol metrics
exporter, and ``docs/SERVING.md`` for the operator guide.
"""

from .client import RemoteError, ServeClient
from .daemon import DEFAULT_HOST, DEFAULT_PORT, Job, ServeDaemon
from .protocol import PROTOCOL_VERSION
from .telemetry import LineFileWriter, MetricsRegistry

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Job",
    "LineFileWriter",
    "MetricsRegistry",
    "PROTOCOL_VERSION",
    "RemoteError",
    "ServeClient",
    "ServeDaemon",
]
