"""The resident serving daemon: one warm Engine behind a TCP socket.

``repro serve`` keeps what every batch invocation throws away — a
:class:`~repro.api.engine.Engine` with its memoized runtimes (warm
LUTs), an open experiment :class:`~repro.store.Store`, and a metrics
registry — resident in one long-lived process.  Clients (see
:mod:`repro.service.client`) submit experiment configs over a
localhost socket speaking :mod:`repro.service.protocol`; a worker pool
executes them through the *same* ``Engine.run*`` paths the in-process
API uses, so a daemon-returned result is bit-identical to a local run
(pinned by differential tests) while the second and every later
submission reuses the first one's LUTs — zero DP rebuilds, observable
through the STATUS-reported :class:`~repro.api.engine.EngineStats`.

Lifecycle and failure semantics:

* a job that raises returns a typed ``job_failed`` error to its
  ``RESULT`` request and leaves the daemon serving;
* ``DRAIN`` rejects new submissions but finishes every queued and
  in-flight job before replying;
* ``SHUTDOWN``, SIGTERM and SIGINT all trigger the same clean drain
  and exit;
* startup writes a pidfile and a structured ``event=listening`` log
  line (host, port, pid), shutdown logs ``event=stopped`` and removes
  the pidfile;
* a second daemon on an occupied port fails fast with a
  :class:`~repro.errors.ServiceError` (the CLI turns it into a clean
  exit 2).

Every completed job persists into the daemon's store, and per-window
QoS series stream into the metrics registry (and the optional
append-only ``metrics.lp`` file) *as they are produced*, via the
:class:`~repro.qos.slo.SloAccountant` window callback.
"""

from __future__ import annotations

import os
import queue
import signal
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field

from ..api.config import ExperimentConfig
from ..api.engine import Engine
from ..errors import ProtocolError, ReproError, ServiceError
from ..obs import events as obs_events
from ..obs import tracing as obs_tracing
from ..obs.tracing import span as _span
from . import protocol
from .telemetry import LineFileWriter, MetricsRegistry, format_line

__all__ = ["Job", "ServeDaemon", "DEFAULT_HOST", "DEFAULT_PORT"]

#: The daemon binds localhost only: the protocol is unauthenticated.
DEFAULT_HOST = "127.0.0.1"

#: Default TCP port of ``repro serve`` (0 picks an ephemeral port).
DEFAULT_PORT = 7787

#: Job states, in lifecycle order.
JOB_STATES = ("pending", "running", "done", "failed")


@dataclass
class Job:
    """One submitted experiment travelling through the daemon."""

    job_id: str
    kind: str
    config: ExperimentConfig
    #: Include per-device records in the result payload.
    records: bool = False
    #: Attach the job's span subtree to its RESULT reply.
    trace: bool = False
    #: The collected span records once the job finished under tracing.
    trace_spans: list | None = None
    state: str = "pending"
    #: The JSON-ready result payload once ``state == "done"``.
    payload: dict | None = None
    #: The error message once ``state == "failed"``.
    error: str | None = None
    submitted_s: float = field(default_factory=time.monotonic)
    started_s: float | None = None
    finished_s: float | None = None

    @property
    def wall_s(self) -> float | None:
        """Execution wall time, once the job has finished."""
        if self.started_s is None or self.finished_s is None:
            return None
        return self.finished_s - self.started_s

    def summary(self) -> dict:
        """The JSON-ready state STATUS replies carry."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "label": self.config.label,
            "state": self.state,
            "error": self.error,
            "wall_s": self.wall_s,
        }


class _Server(socketserver.ThreadingTCPServer):
    """Per-connection handler threads over one listening socket."""

    allow_reuse_address = False
    daemon_threads = True


class _Handler(socketserver.BaseRequestHandler):
    """Reads frames off one connection until the peer hangs up."""

    def handle(self):  # noqa: D102 - socketserver plumbing
        daemon = self.server.serve_daemon
        while True:
            try:
                message = protocol.recv_message(self.request)
            except protocol.ConnectionClosed:
                return
            except ProtocolError as error:
                # A torn frame leaves the stream unparseable: reply
                # typed, then drop the connection.
                self._reply(protocol.error_reply(error.code, str(error)))
                return
            except OSError:
                return
            try:
                reply = daemon.dispatch(message)
            except ProtocolError as error:
                reply = protocol.error_reply(error.code, str(error))
            if not self._reply(reply):
                return

    def _reply(self, message: dict) -> bool:
        try:
            protocol.send_message(self.request, message)
            return True
        except OSError:
            return False


class ServeDaemon:
    """A long-lived serving process: Engine + store + metrics + socket.

    ``engine`` defaults to a fresh :class:`Engine` attached to
    ``store`` (a :class:`~repro.store.Store`, a directory path, or
    ``None`` for the default store).  ``workers`` sizes the executor
    pool; engine access is serialized by a lock, so extra workers
    bound queue-handoff latency rather than adding compute
    parallelism.  ``metrics_file`` appends one line-protocol line per
    completed job and QoS window; ``pidfile`` records the daemon pid
    for process supervisors.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        engine: Engine | None = None,
        store=None,
        workers: int = 1,
        metrics_file=None,
        pidfile=None,
        log=None,
        trace=None,
    ) -> None:
        """See the class docstring; ``log`` overrides the stderr logger
        and ``trace`` names a file the daemon writes its span trace to
        on :meth:`stop` (activating process-wide tracing on start)."""
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        self.host = host
        self.requested_port = port
        self.workers = workers
        self.pidfile = pidfile
        self._log_sink = log
        self.trace_path = trace
        self._own_tracer = False
        self.events = obs_events.EventLog("repro-serve", sink=log)
        if engine is None:
            from ..store.store import Store

            engine = Engine(
                store=store if store is not None else Store()
            )
        self.engine = engine
        self.metrics = MetricsRegistry()
        self._metrics_writer = (
            LineFileWriter(metrics_file, on_error=self._metrics_error)
            if metrics_file is not None
            else None
        )
        self._engine_lock = threading.Lock()
        self._jobs_lock = threading.Lock()
        self._job_done = threading.Condition(self._jobs_lock)
        self._jobs: dict = {}
        self._order: list = []
        self._queue: queue.Queue = queue.Queue()
        self._inflight = 0
        self._next_id = 0
        self._draining = threading.Event()
        self._started_s: float | None = None
        self._server: _Server | None = None
        self._threads: list = []
        self._shutdown_thread: threading.Thread | None = None
        # Counters exist from the first scrape, not the first event.
        jobs = "repro_serve_jobs"
        self._submitted = self.metrics.counter(jobs, "jobs_submitted")
        self._completed = self.metrics.counter(jobs, "jobs_completed")
        self._failed = self.metrics.counter(jobs, "jobs_failed")
        self._requests_done = self.metrics.counter(
            "repro_qos", "requests_completed"
        )
        self._job_wall = self.metrics.histogram("repro_serve_jobs", "wall_s")

    # -- logging / files ---------------------------------------------------------

    def _metrics_error(self, path, error) -> None:
        self.events.emit(
            "metrics_file_error", path=str(path), error=repr(error)
        )

    def _write_pidfile(self) -> None:
        if self.pidfile is None:
            return
        try:
            with open(self.pidfile, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()}\n")
        except OSError as error:
            raise ServiceError(
                f"cannot write pidfile {self.pidfile}: {error}"
            ) from error

    def _remove_pidfile(self) -> None:
        if self.pidfile is None:
            return
        try:
            os.unlink(self.pidfile)
        except OSError:
            pass

    # -- lifecycle ---------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    @property
    def uptime_s(self) -> float:
        """Seconds since the daemon started listening."""
        if self._started_s is None:
            return 0.0
        return time.monotonic() - self._started_s

    def start(self) -> None:
        """Bind the socket and start worker + acceptor threads.

        Returns once the daemon is accepting connections — tests and
        the bench harness run the daemon in-process this way; the CLI
        uses the blocking :meth:`run` instead.
        """
        if self._server is not None:
            raise ServiceError("daemon already started")
        try:
            self._server = _Server((self.host, self.requested_port), _Handler)
        except OSError as error:
            raise ServiceError(
                f"cannot listen on {self.host}:{self.requested_port}: "
                f"{error.strerror or error} "
                f"(is another repro serve already running?)"
            ) from error
        self._server.serve_daemon = self
        self._write_pidfile()
        if self.trace_path is not None and obs_tracing.active_tracer() is None:
            obs_tracing.activate(proc="daemon")
            self._own_tracer = True
        obs_events.install(self.events)
        self._started_s = time.monotonic()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        acceptor = threading.Thread(
            target=self._server.serve_forever,
            name="serve-acceptor",
            daemon=True,
        )
        acceptor.start()
        self._threads.append(acceptor)
        self.events.emit(
            "listening", host=self.host, port=self.port, pid=os.getpid(),
            workers=self.workers,
            store=str(getattr(self.engine.store, "root", None)),
        )

    def run(self) -> dict:
        """Start, serve until SHUTDOWN/SIGTERM/SIGINT, and clean up.

        Blocks the calling (main) thread; returns the final STATUS
        snapshot so the CLI can print a one-line summary.  Signal
        handlers are installed only here — in-process users drive
        :meth:`start`/:meth:`stop` directly.
        """
        self.start()

        def handle(signum, _frame):
            self.events.emit(
                "signal", signal=signal.Signals(signum).name
            )
            self.initiate_shutdown()

        previous = {
            signum: signal.signal(signum, handle)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            while self._server is not None:
                time.sleep(0.1)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            # stop() clears _server first and removes the pidfile last;
            # wait for the whole sequence so the process never exits
            # with the pidfile still on disk.
            if self._shutdown_thread is not None:
                self._shutdown_thread.join(timeout=30)
        return self.status()

    def drain(self) -> int:
        """Refuse new submissions, finish everything queued/in-flight.

        Returns the number of jobs completed or failed over the
        daemon's lifetime.  Idempotent — a second DRAIN just waits for
        the same quiescence.
        """
        self._draining.set()
        with self._jobs_lock:
            while self._queue.unfinished_tasks or self._inflight:
                self._job_done.wait(timeout=0.1)
            done = self._completed.value + self._failed.value
        return done

    def initiate_shutdown(self) -> None:
        """Drain and stop, from any thread, without blocking the caller."""
        if self._shutdown_thread is not None:
            return
        thread = threading.Thread(
            target=self._drain_and_stop, name="serve-shutdown", daemon=True
        )
        self._shutdown_thread = thread
        thread.start()

    def _drain_and_stop(self) -> None:
        self.drain()
        self.stop()

    def stop(self) -> None:
        """Stop the acceptor, close the socket, remove the pidfile."""
        server, self._server = self._server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self._metrics_writer is not None:
            self._metrics_writer.close()
        self._remove_pidfile()
        tracer = obs_tracing.active_tracer()
        if self.trace_path is not None and tracer is not None:
            tracer.trace().write(self.trace_path)
        if self._own_tracer:
            obs_tracing.deactivate()
            self._own_tracer = False
        self.events.emit(
            "stopped", pid=os.getpid(),
            jobs_completed=self._completed.value,
            jobs_failed=self._failed.value,
            uptime_s=self.uptime_s,
        )
        obs_events.uninstall(self.events)
        self.events.close()

    # -- job execution -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # pragma: no cover - legacy poison pill
                return
            try:
                self._execute(job)
            finally:
                self._queue.task_done()

    def _execute(self, job: Job) -> None:
        with self._jobs_lock:
            job.state = "running"
            job.started_s = time.monotonic()
            self._inflight += 1
        job_span = _span("daemon.job", job=job.job_id, kind=job.kind)
        payload = error = None
        try:
            with job_span:
                payload = self._run_job(job)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            error = f"unexpected {type(exc).__name__}: {exc}"
        # Collect before _finish: a RESULT waiter wakes on _finish, so
        # the subtree must already be attached when it reads the job.
        self._collect_job_trace(job, job_span)
        if error is not None:
            self._finish(job, error=error)
        else:
            self._finish(job, payload=payload)

    def _collect_job_trace(self, job: Job, job_span) -> None:
        """Attach the job's span subtree when the submitter asked for it."""
        tracer = obs_tracing.active_tracer()
        span_id = getattr(job_span, "id", None)
        if not job.trace or tracer is None or not span_id:
            job.trace_spans = [] if job.trace else None
            return
        with tracer._lock:
            spans = list(tracer.spans)
        job.trace_spans = [
            span.to_dict() for span in obs_tracing.subtree(spans, span_id)
        ]

    def _run_job(self, job: Job) -> dict:
        """Execute one job through the warm engine; returns its payload."""

        def on_window(stats) -> None:
            self._observe_window(job, stats)

        with self._engine_lock:
            kind, outcome = self.engine.run_job(
                job.config, kind=job.kind, on_window=on_window
            )
        if kind == "qos":
            return {
                "kind": kind,
                "result": outcome.to_dict(include_records=job.records),
            }
        return {
            "kind": kind,
            "row": outcome.to_row(),
            "result": outcome.result.to_dict(
                include_records=job.records
            ) if kind == "fleet" else outcome.result.to_dict(),
        }

    def _finish(self, job: Job, payload: dict | None = None,
                error: str | None = None) -> None:
        with self._jobs_lock:
            job.finished_s = time.monotonic()
            job.payload = payload
            job.error = error
            job.state = "failed" if error is not None else "done"
            self._inflight -= 1
            if error is None:
                self._completed.inc()
            else:
                self._failed.inc()
            self._job_wall.observe(job.wall_s)
            self._job_done.notify_all()
        self._append_metrics([
            format_line(
                "repro_serve_job",
                {"job": job.job_id, "kind": job.kind},
                {
                    "label": job.config.label,
                    "state": job.state,
                    "wall_s": job.wall_s,
                },
                time.time_ns(),
            )
        ])
        fields = dict(
            job=job.job_id, kind=job.kind, label=job.config.label,
            wall_s=job.wall_s,
        )
        if error:
            fields["error"] = repr(error)
        self.events.emit(f"job_{job.state}", **fields)

    def _observe_window(self, job: Job, stats) -> None:
        """Stream one QoS service window into the metrics surfaces."""
        window = stats.to_dict()
        self._requests_done.inc(stats.completed)
        gauges = {
            key: window[key]
            for key in (
                "index", "arrivals", "completed", "backlog", "fleet_size",
                "utilization", "slo_attainment", "energy_nj",
                "p50_ns", "p95_ns", "p99_ns",
            )
            if window[key] is not None
        }
        for key, value in gauges.items():
            self.metrics.gauge("repro_qos_window", key).set(value)
        self._append_metrics([
            format_line(
                "repro_qos_window",
                {"job": job.job_id},
                gauges,
                time.time_ns(),
            )
        ])

    def _append_metrics(self, lines) -> None:
        if self._metrics_writer is not None:
            self._metrics_writer.write(lines)

    # -- request dispatch --------------------------------------------------------

    def dispatch(self, message: dict) -> dict:
        """Answer one inbound request message with a reply message."""
        rtype = protocol.validate_request(message)
        if rtype == "PING":
            return protocol.request("PING") | {"type": "PONG"}
        if rtype == "SUBMIT":
            return self._handle_submit(message)
        if rtype == "STATUS":
            return self._handle_status(message)
        if rtype == "RESULT":
            return self._handle_result(message)
        if rtype == "METRICS":
            return {
                "v": protocol.PROTOCOL_VERSION,
                "type": "METRICS",
                "body": self.metrics_text(),
            }
        if rtype == "DRAIN":
            done = self.drain()
            return {
                "v": protocol.PROTOCOL_VERSION,
                "type": "DRAINED",
                "jobs_done": done,
            }
        if rtype == "SHUTDOWN":
            # Reply first, then stop from another thread so this
            # handler can still flush the reply over the dying socket.
            self._draining.set()
            self.initiate_shutdown()
            return {"v": protocol.PROTOCOL_VERSION, "type": "STOPPING"}
        # The distributed-sweep verbs are valid protocol but belong to
        # the sweep coordinator, not the serve daemon.
        raise ProtocolError(
            f"{rtype} is not served by this daemon "
            f"(send it to a sweep coordinator)",
            code="unsupported",
        )

    def _handle_submit(self, message: dict) -> dict:
        if self._draining.is_set():
            raise ProtocolError(
                "daemon is draining and no longer accepts submissions",
                code="draining",
            )
        kind = message.get("kind", "qos")
        try:
            config = ExperimentConfig.from_dict(message["config"]).validate()
        except ReproError as error:
            raise ProtocolError(str(error), code="bad_config") from error
        with self._jobs_lock:
            self._next_id += 1
            job = Job(
                job_id=f"job-{self._next_id:06d}",
                kind=kind,
                config=config,
                records=bool(message.get("records", False)),
                trace=bool(message.get("trace", False)),
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._submitted.inc()
        self._queue.put(job)
        self.events.emit(
            "job_submitted", job=job.job_id, kind=kind, label=config.label
        )
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "SUBMITTED",
            "job_id": job.job_id,
        }

    def _job(self, job_id) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(
                f"unknown job id {job_id!r}", code="unknown_job"
            )
        return job

    def _handle_status(self, message: dict) -> dict:
        if "job_id" in message:
            return {
                "v": protocol.PROTOCOL_VERSION,
                "type": "STATUS",
                "job": self._job(message["job_id"]).summary(),
            }
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "STATUS",
            **self.status(),
        }

    def _handle_result(self, message: dict) -> dict:
        job = self._job(message["job_id"])
        if message.get("wait", True):
            deadline = time.monotonic() + float(
                message.get("timeout") or 300.0
            )
            with self._jobs_lock:
                while job.state in ("pending", "running"):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._job_done.wait(timeout=min(remaining, 0.5))
        if job.state == "failed":
            raise ProtocolError(
                f"{job.job_id} failed: {job.error}", code="job_failed"
            )
        if job.state != "done":
            raise ProtocolError(
                f"{job.job_id} is still {job.state}", code="job_pending"
            )
        reply = {
            "v": protocol.PROTOCOL_VERSION,
            "type": "RESULT",
            "job_id": job.job_id,
            **job.payload,
        }
        if job.trace:
            reply["trace"] = job.trace_spans or []
        return reply

    # -- observability -----------------------------------------------------------

    def status(self) -> dict:
        """The daemon-wide STATUS body (JSON-ready)."""
        with self._jobs_lock:
            states = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                states[job.state] += 1
            jobs = [self._jobs[jid].summary() for jid in self._order[-20:]]
        return {
            "pid": os.getpid(),
            "host": self.host,
            "port": self.port,
            "uptime_s": self.uptime_s,
            "draining": self._draining.is_set(),
            "queue_depth": states["pending"],
            "inflight": states["running"],
            "jobs": states,
            "recent": jobs,
            "engine": self.engine.stats_snapshot(),
            "spans_recorded": self.spans_recorded,
            "events_logged": self.events.events_logged,
        }

    @property
    def spans_recorded(self) -> int:
        """Spans the active tracer has recorded (0 when tracing is off)."""
        tracer = obs_tracing.active_tracer()
        return tracer.spans_recorded if tracer is not None else 0

    def metrics_text(self, timestamp_ns: int | None = None) -> str:
        """The registry as line protocol, engine/uptime gauges refreshed."""
        snapshot = self.engine.stats_snapshot()
        for key, value in snapshot.items():
            self.metrics.gauge("repro_engine", key).set(value)
        state = self.status()
        serve = "repro_serve"
        self.metrics.gauge(serve, "uptime_s").set(state["uptime_s"])
        self.metrics.gauge(serve, "queue_depth").set(state["queue_depth"])
        self.metrics.gauge(serve, "inflight").set(state["inflight"])
        self.metrics.gauge(serve, "draining").set(state["draining"])
        obs = "repro_obs"
        self.metrics.gauge(obs, "spans_recorded").set(
            state["spans_recorded"]
        )
        self.metrics.gauge(obs, "events_logged").set(state["events_logged"])
        return self.metrics.render(timestamp_ns)
