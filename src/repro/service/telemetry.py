"""Scrape-friendly metrics: counters, gauges, histograms, line protocol.

The daemon keeps one :class:`MetricsRegistry` and exposes it two ways:

* a ``METRICS`` request renders the whole registry as **InfluxDB line
  protocol** — the format Telegraf's ``socket_listener``/``exec``
  inputs and InfluxDB itself ingest natively;
* an append-only ``metrics.lp`` file (``repro serve --metrics-file``)
  receives one line per completed job and per QoS service window, the
  shape a Telegraf ``tail`` input scrapes into a live Grafana board.

Line protocol, one line per measurement::

    measurement,tag1=a,tag2=b field1=1i,field2=0.5,field3="text" 1700000000000000000

Rendering is deterministic: measurements sort by (name, tags), fields
sort by name within a line, integers carry the ``i`` suffix, and
escaping follows the InfluxDB rules (commas/spaces/equals in tags and
field keys, quotes/backslashes in string field values) — pinned by
golden-file tests so external dashboards never see a silent schema
change.

Histograms are streaming: they keep total ``count``/``sum``/``min``/
``max`` exactly and nearest-rank p50/p95/p99 over a bounded window of
the most recent :data:`HISTOGRAM_WINDOW` observations, so a daemon
that serves for weeks holds constant memory.
"""

from __future__ import annotations

import threading

from ..errors import ServiceError
from ..qos.slo import PERCENTILES, percentile

__all__ = [
    "HISTOGRAM_WINDOW",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_tag",
    "escape_measurement",
    "format_field_value",
    "format_line",
]

#: Observations a histogram keeps for percentile estimation.
HISTOGRAM_WINDOW = 4096


# -- line-protocol formatting -----------------------------------------------------


def escape_measurement(name: str) -> str:
    """Escape a measurement name (commas and spaces)."""
    return name.replace(",", r"\,").replace(" ", r"\ ")


def escape_tag(value: str) -> str:
    """Escape a tag key, tag value or field key (comma/space/equals)."""
    return (
        str(value)
        .replace(",", r"\,")
        .replace("=", r"\=")
        .replace(" ", r"\ ")
    )


def format_field_value(value) -> str:
    """One field value in line-protocol syntax.

    Booleans render as ``true``/``false``, integers with the ``i``
    suffix, floats via ``repr`` (shortest round-trip form), strings
    quoted with ``"`` and ``\\`` escaped.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return f"{value}i"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise ServiceError(
        f"unsupported field value {value!r} ({type(value).__name__})"
    )


def format_line(measurement: str, tags: dict, fields: dict,
                timestamp_ns: int | None = None) -> str:
    """One complete line-protocol line (tags and fields sorted)."""
    if not fields:
        raise ServiceError(f"measurement {measurement!r} has no fields")
    parts = [escape_measurement(measurement)]
    for key in sorted(tags):
        parts.append(f",{escape_tag(key)}={escape_tag(tags[key])}")
    rendered = ",".join(
        f"{escape_tag(key)}={format_field_value(fields[key])}"
        for key in sorted(fields)
    )
    line = "".join(parts) + " " + rendered
    if timestamp_ns is not None:
        line += f" {int(timestamp_ns)}"
    return line


# -- metric kinds -----------------------------------------------------------------


class Counter:
    """A monotonically increasing integer metric."""

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ServiceError(f"counters only go up, got inc({amount})")
        self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def fields(self, name: str) -> dict:
        """The line-protocol fields this metric contributes."""
        return {name: self._value}


class Gauge:
    """A point-in-time numeric metric."""

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value) -> None:
        """Set the gauge to ``value`` (int, float or bool)."""
        self._value = value

    @property
    def value(self):
        """The last value set."""
        return self._value

    def fields(self, name: str) -> dict:
        """The line-protocol fields this metric contributes."""
        return {name: self._value}


class Histogram:
    """Streaming distribution: exact count/sum/min/max, windowed tails.

    Percentiles (nearest-rank p50/p95/p99) are computed over the most
    recent :data:`HISTOGRAM_WINDOW` observations so memory stays
    bounded however long the daemon serves.
    """

    def __init__(self, window: int = HISTOGRAM_WINDOW) -> None:
        self._window = window
        self._recent: list = []
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        self._recent.append(value)
        if len(self._recent) > self._window:
            del self._recent[: len(self._recent) - self._window]

    @property
    def count(self) -> int:
        """Total observations ever folded in."""
        return self._count

    def fields(self, name: str) -> dict:
        """The line-protocol fields this metric contributes."""
        fields = {
            f"{name}_count": self._count,
            f"{name}_sum": self._sum,
        }
        if self._count:
            fields[f"{name}_min"] = self._min
            fields[f"{name}_max"] = self._max
            ordered = sorted(self._recent)
            for q, label in zip(PERCENTILES, ("p50", "p95", "p99")):
                fields[f"{name}_{label}"] = percentile(ordered, q)
        return fields


# -- the registry -----------------------------------------------------------------


class MetricsRegistry:
    """A named, tagged collection of counters, gauges and histograms.

    Metrics are addressed by ``(measurement, field, tags)``; all
    fields sharing one ``(measurement, tags)`` pair merge into a
    single line on render, which is the idiomatic line-protocol shape
    (one point, many fields).  The registry is thread-safe: handler
    threads increment while a scraper renders.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (measurement, sorted-tags-tuple) -> {field: metric}
        self._groups: dict = {}
        self._tags: dict = {}

    def _metric(self, factory, measurement: str, field: str, tags: dict):
        key = (measurement, tuple(sorted((tags or {}).items())))
        with self._lock:
            group = self._groups.setdefault(key, {})
            if field not in group:
                group[field] = factory()
                self._tags[key] = dict(tags or {})
            metric = group[field]
        if not isinstance(metric, factory):
            raise ServiceError(
                f"metric {measurement}.{field} already registered as "
                f"{type(metric).__name__}, not {factory.__name__}"
            )
        return metric

    def counter(self, measurement: str, field: str,
                tags: dict | None = None) -> Counter:
        """Get or create the named counter."""
        return self._metric(Counter, measurement, field, tags or {})

    def gauge(self, measurement: str, field: str,
              tags: dict | None = None) -> Gauge:
        """Get or create the named gauge."""
        return self._metric(Gauge, measurement, field, tags or {})

    def histogram(self, measurement: str, field: str,
                  tags: dict | None = None) -> Histogram:
        """Get or create the named histogram."""
        return self._metric(Histogram, measurement, field, tags or {})

    def lines(self, timestamp_ns: int | None = None) -> list:
        """Every measurement as one line-protocol line, sorted."""
        with self._lock:
            snapshot = [
                (key, self._tags[key], dict(group))
                for key, group in sorted(self._groups.items())
            ]
        lines = []
        for (measurement, _), tags, group in snapshot:
            fields: dict = {}
            for field, metric in group.items():
                fields.update(metric.fields(field))
            lines.append(
                format_line(measurement, tags, fields, timestamp_ns)
            )
        return lines

    def render(self, timestamp_ns: int | None = None) -> str:
        """The whole registry as a line-protocol document."""
        return "\n".join(self.lines(timestamp_ns)) + "\n"

    def values(self) -> dict:
        """The registry as a JSON-ready nested dict.

        ``{measurement: {field...: value}}`` with every group's tag
        dict folded into the measurement key as line-protocol tag
        syntax (``measurement,tag=value``), mirroring :meth:`lines` so
        a ``STATUS --json`` body and a ``METRICS`` scrape agree on
        naming.  Histograms expand into their ``_count``/``_sum``/...
        fields exactly as they render.
        """
        with self._lock:
            snapshot = [
                (key, self._tags[key], dict(group))
                for key, group in sorted(self._groups.items())
            ]
        values: dict = {}
        for (measurement, _), tags, group in snapshot:
            name = measurement + "".join(
                f",{escape_tag(key)}={escape_tag(tags[key])}"
                for key in sorted(tags)
            )
            fields: dict = {}
            for field, metric in group.items():
                fields.update(metric.fields(field))
            values[name] = fields
        return values


class LineFileWriter:
    """Append-only ``metrics.lp`` writer a Telegraf ``tail`` can follow.

    Each :meth:`write` appends complete lines and flushes, so a
    follower never observes a torn line.  Failures degrade silently
    after the first logged warning: metrics export must never take
    down the serving path.
    """

    def __init__(self, path, log=None, on_error=None) -> None:
        """Open ``path`` for appending; ``log`` is a one-line logger,
        ``on_error`` a structured ``(path, error)`` callback that takes
        precedence over ``log`` for the first-failure warning."""
        self.path = path
        self._log = log
        self._on_error = on_error
        self._lock = threading.Lock()
        self._failed = False
        self._handle = None

    def write(self, lines) -> None:
        """Append the given line-protocol lines (a list of strings)."""
        if self._failed or not lines:
            return
        with self._lock:
            try:
                if self._handle is None:
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write("\n".join(lines) + "\n")
                self._handle.flush()
            except OSError as error:
                self._failed = True
                if self._on_error is not None:
                    self._on_error(self.path, error)
                elif self._log is not None:
                    self._log(
                        f"event=metrics_file_error path={self.path} "
                        f"error={error!r}"
                    )

    def close(self) -> None:
        """Close the underlying file handle, if open."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
