"""A blocking client for the serve daemon, and the CLI verbs over it.

:class:`ServeClient` speaks :mod:`repro.service.protocol` to a running
``repro serve`` daemon.  Every call opens one connection, performs one
request/reply exchange and closes — the daemon is the stateful side;
clients stay trivially restartable and safe to use from any process
(``repro submit`` in a second shell is exactly this class).

Typed ``ERROR`` replies and socket-level failures both surface as
:class:`~repro.errors.ServiceError` — the error reply's machine code is
kept on the exception as ``code`` — so the CLI's one-line exit-2
handling covers every failure mode.
"""

from __future__ import annotations

import socket

from ..api.config import ExperimentConfig
from ..errors import ServiceError
from . import protocol
from .daemon import DEFAULT_HOST, DEFAULT_PORT

__all__ = ["ServeClient", "RemoteError"]


class RemoteError(ServiceError):
    """The daemon answered with a typed ERROR reply.

    ``code`` carries the reply's machine-readable error code (one of
    :data:`repro.service.protocol.ERROR_CODES`), so callers can branch
    on ``job_failed`` vs ``draining`` without parsing the message.
    """

    def __init__(self, message: str, code: str = "bad_message") -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One request/reply exchange per call against a serve daemon.

    ``timeout`` bounds each socket operation; RESULT waits size their
    timeout to the requested job wait plus slack, so a long-running job
    does not trip the transport timeout.
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 timeout: float = 30.0) -> None:
        """See the class docstring."""
        self.host = host
        self.port = port
        self.timeout = timeout

    def _exchange(self, message: dict,
                  timeout: float | None = None) -> dict:
        try:
            with socket.create_connection(
                (self.host, self.port),
                timeout=timeout if timeout is not None else self.timeout,
            ) as sock:
                protocol.send_message(sock, message)
                reply = protocol.recv_message(sock)
        except protocol.ConnectionClosed as error:
            raise ServiceError(
                f"daemon at {self.host}:{self.port} closed the "
                f"connection without replying"
            ) from error
        except OSError as error:
            raise ServiceError(
                f"cannot reach daemon at {self.host}:{self.port}: "
                f"{error.strerror or error} (is repro serve running?)"
            ) from error
        if reply.get("type") == "ERROR":
            raise RemoteError(
                reply.get("error", "unspecified daemon error"),
                code=reply.get("code", "bad_message"),
            )
        return reply

    # -- the protocol verbs ------------------------------------------------------

    def submit(self, config, kind: str = "qos",
               records: bool = False, trace: bool = False) -> str:
        """Enqueue one experiment; returns its job id.

        ``config`` is an :class:`~repro.api.config.ExperimentConfig` or
        its dict form; ``kind`` picks the execution path (``run``,
        ``fleet`` or ``qos``); ``records`` asks the eventual RESULT to
        include per-device records; ``trace`` asks a tracing daemon to
        attach the job's span subtree to the RESULT payload under
        ``trace`` (an empty list when the daemon is not tracing).
        """
        if isinstance(config, ExperimentConfig):
            config = config.to_dict()
        fields = {"kind": kind, "config": config, "records": records}
        if trace:
            fields["trace"] = True
        reply = self._exchange(protocol.request("SUBMIT", **fields))
        return reply["job_id"]

    def status(self, job_id: str | None = None) -> dict:
        """Daemon-wide state, or one job's state when ``job_id`` is given."""
        fields = {} if job_id is None else {"job_id": job_id}
        reply = self._exchange(protocol.request("STATUS", **fields))
        reply.pop("v", None)
        reply.pop("type", None)
        return reply

    def result(self, job_id: str, wait: bool = True,
               timeout: float = 300.0) -> dict:
        """Fetch a job's result payload, blocking until done by default.

        Returns the payload dict (``kind`` plus ``result``/``row``);
        raises :class:`RemoteError` with code ``job_failed`` if the job
        raised inside the daemon and ``job_pending`` if it has not
        finished within ``timeout`` (or at all, with ``wait=False``).
        """
        reply = self._exchange(
            protocol.request(
                "RESULT", job_id=job_id, wait=wait, timeout=timeout
            ),
            timeout=(timeout + self.timeout) if wait else None,
        )
        return {
            key: value for key, value in reply.items()
            if key not in ("v", "type")
        }

    def metrics(self) -> str:
        """The daemon's metrics registry as InfluxDB line protocol."""
        return self._exchange(protocol.request("METRICS"))["body"]

    def drain(self, timeout: float = 300.0) -> int:
        """Stop new submissions, wait for quiescence; returns jobs done."""
        reply = self._exchange(
            protocol.request("DRAIN"), timeout=timeout + self.timeout
        )
        return reply["jobs_done"]

    def shutdown(self, timeout: float = 300.0) -> None:
        """Ask the daemon to drain and stop."""
        self._exchange(
            protocol.request("SHUTDOWN"), timeout=timeout + self.timeout
        )

    def ping(self) -> bool:
        """True when a daemon answers at ``(host, port)``."""
        try:
            return self._exchange(protocol.request("PING"))["type"] == "PONG"
        except ServiceError:
            return False
