"""TinyML benchmark models (Table IV).

The paper extracts the characteristics of INT8-quantized, pruned TinyML
variants of three CNN backbones and drives its benchmarks from the
resulting totals:

================  ========  =========  ==================
Model             # Param   # MAC      PIM operation ratio
================  ========  =========  ==================
EfficientNet-B0   95 k      3.245 M    85 %
MobileNetV2       101 k     2.528 M    80 %
ResNet-18         256 k     29.580 M   75 %
================  ========  =========  ==================

:class:`ModelSpec` carries those totals (the placement algorithm only
needs them) plus the reference peak inference times the paper reports in
Fig. 6, which we use for calibration checks.  Each spec can also build a
synthetic layer-level backbone (through :mod:`repro.workloads.layers`)
for the functional examples; its totals approximate — but intentionally
do not replace — the published Table IV numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError
from .layers import Conv2d, DepthwiseConv2d, Linear, network_stats


@dataclass(frozen=True)
class ModelSpec:
    """One benchmark model's placement-relevant characteristics."""

    name: str
    params: int
    macs: int
    pim_ratio: float
    bytes_per_weight: int = 1  # INT8 quantized
    #: Fig. 6 reference inference times at 50 MHz (ns), for calibration.
    peak_inference_ns: float = 0.0
    mram_only_inference_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.params <= 0 or self.macs <= 0:
            raise WorkloadError(f"model {self.name}: non-positive totals")
        if not 0.0 < self.pim_ratio <= 1.0:
            raise WorkloadError(
                f"model {self.name}: PIM ratio {self.pim_ratio} outside (0, 1]"
            )

    @property
    def pim_macs(self) -> int:
        """MACs executed on the PIM fabric."""
        return round(self.macs * self.pim_ratio)

    @property
    def core_macs(self) -> int:
        """MACs executed on the RISC-V core (the non-PIM share)."""
        return self.macs - self.pim_macs

    @property
    def macs_per_weight(self) -> float:
        """Average MACs each stored weight participates in per inference."""
        return self.pim_macs / self.params

    @property
    def weight_bytes(self) -> int:
        """Bytes of weight storage the fabric must hold."""
        return self.params * self.bytes_per_weight

    def backbone(self):
        """A synthetic layer-level backbone for functional examples.

        Returns ``(layers, input_shape)``.  Totals approximate Table IV;
        experiments always use the published totals above.
        """
        return _BACKBONES[self.name]()

    def backbone_stats(self):
        """Per-layer stats of the synthetic backbone."""
        layers, in_shape = self.backbone()
        return network_stats(layers, in_shape)


def _efficientnet_b0_tiny():
    """MBConv-style stack: stem, depthwise separable stages, head."""
    layers = [
        Conv2d("stem", 3, 16, kernel=3, stride=2, padding=1),
        DepthwiseConv2d("mb1.dw", 16, kernel=3, padding=1),
        Conv2d("mb1.pw", 16, 24, kernel=1),
        DepthwiseConv2d("mb2.dw", 24, kernel=3, stride=2, padding=1),
        Conv2d("mb2.pw", 24, 40, kernel=1),
        DepthwiseConv2d("mb3.dw", 40, kernel=5, padding=2),
        Conv2d("mb3.pw", 40, 80, kernel=1),
        DepthwiseConv2d("mb4.dw", 80, kernel=3, stride=2, padding=1),
        Conv2d("mb4.pw", 80, 112, kernel=1),
        DepthwiseConv2d("mb5.dw", 112, kernel=5, padding=2),
        Conv2d("mb5.pw", 112, 192, kernel=1),
        Conv2d("head", 192, 160, kernel=1),
        DepthwiseConv2d("pool", 160, kernel=4),
        Linear("fc", 160, 10),
    ]
    return layers, (3, 32, 32)


def _mobilenet_v2_tiny():
    """Inverted-residual-style stack."""
    layers = [
        Conv2d("stem", 3, 16, kernel=3, stride=2, padding=1),
        DepthwiseConv2d("ir1.dw", 16, kernel=3, padding=1),
        Conv2d("ir1.pw", 16, 24, kernel=1),
        Conv2d("ir2.expand", 24, 72, kernel=1),
        DepthwiseConv2d("ir2.dw", 72, kernel=3, stride=2, padding=1),
        Conv2d("ir2.project", 72, 32, kernel=1),
        Conv2d("ir3.expand", 32, 96, kernel=1),
        DepthwiseConv2d("ir3.dw", 96, kernel=3, padding=1),
        Conv2d("ir3.project", 96, 64, kernel=1),
        Conv2d("ir4.expand", 64, 192, kernel=1),
        DepthwiseConv2d("ir4.dw", 192, kernel=3, stride=2, padding=1),
        Conv2d("ir4.project", 192, 96, kernel=1),
        DepthwiseConv2d("pool", 96, kernel=4),
        Linear("fc", 96, 10),
    ]
    return layers, (3, 32, 32)


def _resnet18_tiny():
    """Basic-block-style stack with 3x3 convolutions throughout."""
    layers = [
        Conv2d("stem", 3, 24, kernel=3, stride=1, padding=1),
        Conv2d("b1.conv1", 24, 24, kernel=3, padding=1),
        Conv2d("b1.conv2", 24, 24, kernel=3, padding=1),
        Conv2d("b2.conv1", 24, 48, kernel=3, stride=2, padding=1),
        Conv2d("b2.conv2", 48, 48, kernel=3, padding=1),
        Conv2d("b3.conv1", 48, 64, kernel=3, stride=2, padding=1),
        Conv2d("b3.conv2", 64, 64, kernel=3, padding=1),
        Conv2d("b4.conv1", 64, 96, kernel=3, stride=2, padding=1),
        Conv2d("b4.conv2", 96, 96, kernel=3, padding=1),
        DepthwiseConv2d("pool", 96, kernel=4),
        Linear("fc", 96, 10),
    ]
    return layers, (3, 32, 32)


_BACKBONES = {
    "EfficientNet-B0": _efficientnet_b0_tiny,
    "MobileNetV2": _mobilenet_v2_tiny,
    "ResNet-18": _resnet18_tiny,
}

_MS = 1_000_000.0  # ns per ms

#: Table IV row 1, with Fig. 6 reference inference times.
EFFICIENTNET_B0 = ModelSpec(
    name="EfficientNet-B0",
    params=95_000,
    macs=3_245_000,
    pim_ratio=0.85,
    peak_inference_ns=31.06 * _MS,
    mram_only_inference_ns=44.5 * _MS,
)

#: Table IV row 2.
MOBILENET_V2 = ModelSpec(
    name="MobileNetV2",
    params=101_000,
    macs=2_528_000,
    pim_ratio=0.80,
    peak_inference_ns=25.71 * _MS,
    mram_only_inference_ns=36.84 * _MS,
)

#: Table IV row 3.
RESNET_18 = ModelSpec(
    name="ResNet-18",
    params=256_000,
    macs=29_580_000,
    pim_ratio=0.75,
    peak_inference_ns=320.87 * _MS,
    mram_only_inference_ns=459.74 * _MS,
)

#: All Table IV rows, in the paper's order.
TABLE_IV = (EFFICIENTNET_B0, MOBILENET_V2, RESNET_18)


def model_by_name(name: str) -> ModelSpec:
    """Look a Table IV model up by (case-insensitive) name."""
    for spec in TABLE_IV:
        if spec.name.lower() == name.lower():
            return spec
    raise WorkloadError(
        f"unknown model {name!r}; available: "
        f"{', '.join(m.name for m in TABLE_IV)}"
    )
