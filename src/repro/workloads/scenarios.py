"""Workload scenarios: materialised load patterns.

A :class:`Scenario` is a fully materialised load pattern — one integer
inference count per time slice, bounded by ``peak`` (the paper sizes the
time slice so that at most 10 inferences fit at maximum performance).

The six canonical patterns of Fig. 4 remain first-class
(:class:`ScenarioCase` / :func:`scenario`), but they are now *presets*
of the composable arrival-process DSL in
:mod:`repro.workloads.arrivals` — constant, spike, pulsing, uniform —
so figures reproduce exactly while arbitrary arrival processes
(Poisson, bursty MMPP, diurnal curves, trace replay) plug into the same
runtime:

* Case 1 — constant low load;
* Case 2 — constant high load;
* Case 3 — periodic spikes on a low baseline;
* Case 4 — the same spikes, more frequent;
* Case 5 — high/low pulsing (square wave);
* Case 6 — seeded random load.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from ..errors import WorkloadError


class ScenarioCase(Enum):
    """The six cases of Fig. 4."""

    LOW_CONSTANT = 1
    HIGH_CONSTANT = 2
    PERIODIC_SPIKE = 3
    PERIODIC_SPIKE_FREQUENT = 4
    PULSING = 5
    RANDOM = 6

    @property
    def label(self) -> str:
        """The paper's caption for this case."""
        return {
            ScenarioCase.LOW_CONSTANT: "Low Workload Constant",
            ScenarioCase.HIGH_CONSTANT: "High Workload Constant",
            ScenarioCase.PERIODIC_SPIKE: "Periodic Spike Pattern",
            ScenarioCase.PERIODIC_SPIKE_FREQUENT: "Periodic Spike Pattern (frequent)",
            ScenarioCase.PULSING: "High-Low Pulsing Pattern",
            ScenarioCase.RANDOM: "Random Workload",
        }[self]


@dataclass(frozen=True)
class Scenario:
    """A fully materialised load pattern: inferences per slice.

    ``case`` identifies a Fig. 4 preset (None for DSL-built or replayed
    scenarios); ``name`` carries the arrival process's identity so fleet
    reports and exports stay self-describing.
    """

    case: ScenarioCase | None = None
    loads: tuple = ()
    peak: int = 10
    name: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.peak, int) or self.peak <= 0:
            raise WorkloadError(
                f"scenario peak must be a positive integer, got {self.peak!r}"
            )
        if not self.loads:
            raise WorkloadError("scenario has no slices")
        for index, load in enumerate(self.loads):
            if not isinstance(load, int) or isinstance(load, bool):
                raise WorkloadError(
                    f"slice {index}: load must be an integer, got {load!r}"
                )
            if load < 0 or load > self.peak:
                raise WorkloadError(
                    f"slice {index}: load {load} outside [0, peak={self.peak}]"
                )

    def __len__(self) -> int:
        return len(self.loads)

    @property
    def label(self) -> str:
        """Human-readable identity for figures and reports."""
        if self.name:
            return self.name
        if self.case is not None:
            return self.case.label
        return "custom"

    @property
    def mean_load(self) -> float:
        """Average inferences per slice."""
        return sum(self.loads) / len(self.loads)

    @property
    def total_inferences(self) -> int:
        """Total inference requests over the run."""
        return sum(self.loads)

    # -- derivation helpers -----------------------------------------------------

    def with_length(self, slices: int) -> "Scenario":
        """Truncate or cyclically extend the pattern to ``slices``."""
        if not isinstance(slices, int) or slices <= 0:
            raise WorkloadError(
                f"scenario length must be a positive integer, got {slices!r}"
            )
        loads = tuple(self.loads[i % len(self.loads)] for i in range(slices))
        return replace(self, loads=loads)

    def with_peak(self, peak: int, clamp: bool = False) -> "Scenario":
        """Re-bound the pattern by a new peak.

        With ``clamp=False`` (the default) a load above the new peak is
        an error — silently rewriting a measured pattern would corrupt
        comparisons; pass ``clamp=True`` to shed the excess instead.
        """
        if not isinstance(peak, int) or peak <= 0:
            raise WorkloadError(
                f"scenario peak must be a positive integer, got {peak!r}"
            )
        if clamp:
            return replace(
                self, peak=peak, loads=tuple(min(peak, x) for x in self.loads)
            )
        over = [i for i, x in enumerate(self.loads) if x > peak]
        if over:
            raise WorkloadError(
                f"cannot lower peak to {peak}: slice {over[0]} carries "
                f"{self.loads[over[0]]} inferences (pass clamp=True to shed)"
            )
        return replace(self, peak=peak)

    def scaled(self, factor: float) -> "Scenario":
        """Scale every load by ``factor`` (rounded, clamped to the peak)."""
        if factor < 0:
            raise WorkloadError(f"scale factor must be >= 0, got {factor!r}")
        loads = tuple(
            max(0, min(self.peak, int(round(x * factor)))) for x in self.loads
        )
        return replace(self, loads=loads)

    def concat(self, other: "Scenario") -> "Scenario":
        """This pattern followed by ``other`` (peak: the larger of the two)."""
        if not isinstance(other, Scenario):
            raise WorkloadError(
                f"can only concatenate scenarios, got {type(other).__name__}"
            )
        return Scenario(
            loads=self.loads + other.loads,
            peak=max(self.peak, other.peak),
            name=f"{self.label}+{other.label}",
        )

    def __add__(self, other: "Scenario") -> "Scenario":
        if not isinstance(other, Scenario):
            return NotImplemented
        return self.concat(other)

    def overlay(self, other: "Scenario") -> "Scenario":
        """Element-wise sum with ``other`` (same length; peak-clamped)."""
        if not isinstance(other, Scenario):
            raise WorkloadError(
                f"can only overlay scenarios, got {type(other).__name__}"
            )
        if len(other) != len(self):
            raise WorkloadError(
                f"overlay lengths differ: {len(self)} vs {len(other)}"
            )
        peak = max(self.peak, other.peak)
        loads = tuple(
            min(peak, a + b) for a, b in zip(self.loads, other.loads)
        )
        return Scenario(
            loads=loads, peak=peak, name=f"{self.label}+{other.label}"
        )

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-primitive description for JSON export."""
        return {
            "case": self.case.value if self.case is not None else None,
            "label": self.label,
            "peak": self.peak,
            "slices": len(self.loads),
            "loads": list(self.loads),
        }


def _fig4_process(case: ScenarioCase, peak: int, low: int):
    """The Fig. 4 case as an arrival process of the scenario DSL."""
    from . import arrivals

    if case is ScenarioCase.LOW_CONSTANT:
        return arrivals.constant(low)
    if case is ScenarioCase.HIGH_CONSTANT:
        return arrivals.constant(peak)
    if case is ScenarioCase.PERIODIC_SPIKE:
        # One-slice spike to peak every 10 slices on a low baseline.
        return arrivals.periodic_spike(period=10, baseline=low, spike=peak)
    if case is ScenarioCase.PERIODIC_SPIKE_FREQUENT:
        # The same spike every 4 slices.
        return arrivals.periodic_spike(period=4, baseline=low, spike=peak)
    if case is ScenarioCase.PULSING:
        # 5 slices high / 5 slices low square wave.
        return arrivals.pulsing(high_len=5, low_len=5, high=peak, low=low)
    if case is ScenarioCase.RANDOM:
        return arrivals.uniform(low, peak)
    raise WorkloadError(f"unhandled case {case}")  # pragma: no cover


def scenario(
    case: ScenarioCase,
    slices: int | None = None,
    peak: int = 10,
    low: int = 2,
    seed: int = 2025,
    length: int | None = None,
) -> Scenario:
    """Materialise one of the Fig. 4 cases.

    ``slices`` defaults to 50 (the paper runs each benchmark over 50 time
    slices), ``peak`` to 10 inferences per slice (the paper's time-slice
    sizing), and ``low`` to a fifth of peak.  ``length`` is accepted as
    an explicit alias of ``slices`` (conflicting values are an error,
    even when one of them happens to spell the default).
    """
    if not isinstance(case, ScenarioCase):
        raise WorkloadError(
            f"case must be a ScenarioCase, got {case!r}"
        )
    if not isinstance(peak, int) or peak <= 0:
        raise WorkloadError(
            f"scenario peak must be a positive integer, got {peak!r}"
        )
    if not 0 < low <= peak:
        raise WorkloadError(f"low load {low} must lie in (0, peak={peak}]")

    process = _fig4_process(case, peak, low)
    materialised = process.materialize(
        slices=slices, peak=peak, seed=seed, length=length,
    )
    return replace(materialised, case=case, name=None)


#: All six cases, in the paper's order.
ALL_CASES = tuple(ScenarioCase)
