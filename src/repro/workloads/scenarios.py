"""Workload scenarios: the six inference-load patterns of Fig. 4.

Each scenario yields, per time slice, the number of inference requests
arriving in that slice (the *computational load*).  Loads are expressed in
inferences per slice, between 1 and ``peak`` — the paper sizes the time
slice so that at most 10 inferences fit at maximum performance.

* Case 1 — constant low load;
* Case 2 — constant high load;
* Case 3 — periodic spikes on a low baseline;
* Case 4 — the same spikes, more frequent;
* Case 5 — high/low pulsing (square wave);
* Case 6 — seeded random load.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
import random

from ..errors import WorkloadError


class ScenarioCase(Enum):
    """The six cases of Fig. 4."""

    LOW_CONSTANT = 1
    HIGH_CONSTANT = 2
    PERIODIC_SPIKE = 3
    PERIODIC_SPIKE_FREQUENT = 4
    PULSING = 5
    RANDOM = 6

    @property
    def label(self) -> str:
        """The paper's caption for this case."""
        return {
            ScenarioCase.LOW_CONSTANT: "Low Workload Constant",
            ScenarioCase.HIGH_CONSTANT: "High Workload Constant",
            ScenarioCase.PERIODIC_SPIKE: "Periodic Spike Pattern",
            ScenarioCase.PERIODIC_SPIKE_FREQUENT: "Periodic Spike Pattern (frequent)",
            ScenarioCase.PULSING: "High-Low Pulsing Pattern",
            ScenarioCase.RANDOM: "Random Workload",
        }[self]


@dataclass(frozen=True)
class Scenario:
    """A fully materialised load pattern: inferences per slice."""

    case: ScenarioCase
    loads: tuple
    peak: int

    def __post_init__(self) -> None:
        if not self.loads:
            raise WorkloadError("scenario has no slices")
        if any(load < 0 or load > self.peak for load in self.loads):
            raise WorkloadError(
                f"loads must lie in [0, peak={self.peak}]"
            )

    def __len__(self) -> int:
        return len(self.loads)

    @property
    def mean_load(self) -> float:
        """Average inferences per slice."""
        return sum(self.loads) / len(self.loads)

    @property
    def total_inferences(self) -> int:
        """Total inference requests over the run."""
        return sum(self.loads)


def scenario(
    case: ScenarioCase,
    slices: int = 50,
    peak: int = 10,
    low: int = 2,
    seed: int = 2025,
) -> Scenario:
    """Materialise one of the Fig. 4 cases.

    ``slices`` defaults to 50 (the paper runs each benchmark over 50 time
    slices), ``peak`` to 10 inferences per slice (the paper's time-slice
    sizing), and ``low`` to a fifth of peak.
    """
    if slices <= 0:
        raise WorkloadError("scenario needs at least one slice")
    if not 0 < low <= peak:
        raise WorkloadError(f"low load {low} must lie in (0, peak={peak}]")

    if case is ScenarioCase.LOW_CONSTANT:
        loads = [low] * slices
    elif case is ScenarioCase.HIGH_CONSTANT:
        loads = [peak] * slices
    elif case is ScenarioCase.PERIODIC_SPIKE:
        # One-slice spike to peak every 10 slices on a low baseline.
        loads = [peak if i % 10 == 9 else low for i in range(slices)]
    elif case is ScenarioCase.PERIODIC_SPIKE_FREQUENT:
        # The same spike every 4 slices.
        loads = [peak if i % 4 == 3 else low for i in range(slices)]
    elif case is ScenarioCase.PULSING:
        # 5 slices high / 5 slices low square wave.
        loads = [peak if (i // 5) % 2 == 0 else low for i in range(slices)]
    elif case is ScenarioCase.RANDOM:
        rng = random.Random(seed)
        loads = [rng.randint(low, peak) for _ in range(slices)]
    else:  # pragma: no cover - enum is exhaustive
        raise WorkloadError(f"unhandled case {case}")
    return Scenario(case=case, loads=tuple(loads), peak=peak)


#: All six cases, in the paper's order.
ALL_CASES = tuple(ScenarioCase)
