"""Workloads: TinyML models (Table IV) and load scenarios (Fig. 4)."""

from .layers import Conv2d, DepthwiseConv2d, Linear, LayerStats
from .models import (
    ModelSpec,
    EFFICIENTNET_B0,
    MOBILENET_V2,
    RESNET_18,
    TABLE_IV,
    model_by_name,
)
from .scenarios import Scenario, ScenarioCase, scenario, ALL_CASES
from .tasks import InferenceTask, TaskBuffer

__all__ = [
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "LayerStats",
    "ModelSpec",
    "EFFICIENTNET_B0",
    "MOBILENET_V2",
    "RESNET_18",
    "TABLE_IV",
    "model_by_name",
    "Scenario",
    "ScenarioCase",
    "scenario",
    "ALL_CASES",
    "InferenceTask",
    "TaskBuffer",
]
