"""Workloads: TinyML models (Table IV), load scenarios and arrival DSL."""

from .layers import Conv2d, DepthwiseConv2d, Linear, LayerStats
from .models import (
    ModelSpec,
    EFFICIENTNET_B0,
    MOBILENET_V2,
    RESNET_18,
    TABLE_IV,
    model_by_name,
)
from .scenarios import Scenario, ScenarioCase, scenario, ALL_CASES
from .tasks import InferenceTask, TaskBuffer
from .arrivals import (
    ArrivalProcess,
    bursty,
    constant,
    diurnal,
    load_trace,
    periodic_spike,
    poisson,
    pulsing,
    scenario_from_trace,
    trace,
    uniform,
)

__all__ = [
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "LayerStats",
    "ModelSpec",
    "EFFICIENTNET_B0",
    "MOBILENET_V2",
    "RESNET_18",
    "TABLE_IV",
    "model_by_name",
    "Scenario",
    "ScenarioCase",
    "scenario",
    "ALL_CASES",
    "InferenceTask",
    "TaskBuffer",
    "ArrivalProcess",
    "bursty",
    "constant",
    "diurnal",
    "load_trace",
    "periodic_spike",
    "poisson",
    "pulsing",
    "scenario_from_trace",
    "trace",
    "uniform",
]
