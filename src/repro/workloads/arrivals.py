"""Composable arrival processes: the scenario DSL.

:class:`ArrivalProcess` generalises the closed six-case enum of Fig. 4
into an open algebra of load generators.  A process describes *how*
inference requests arrive per time slice; :meth:`ArrivalProcess.materialize`
samples it into a concrete :class:`~repro.workloads.scenarios.Scenario`
for the runtime.  Generators:

* :func:`constant` — a flat load level;
* :func:`periodic_spike` — spikes to a peak on a low baseline;
* :func:`pulsing` — a high/low square wave;
* :func:`uniform` — seeded uniform random load (Fig. 4 Case 6);
* :func:`poisson` — a Poisson arrival process at a mean rate;
* :func:`bursty` — a two-state Markov-modulated Poisson process (MMPP):
  calm traffic with seeded bursts, the classic serving-traffic model;
* :func:`diurnal` — a sinusoidal day/night load curve;
* :func:`trace` / :func:`load_trace` — replay of recorded loads, either
  inline or from a CSV / JSON file.

Combinators compose processes into richer patterns and are exposed both
as functions and as fluent methods::

    from repro.workloads import arrivals as arr

    rush_hour = arr.diurnal(trough=1).overlay(arr.poisson(2.0)).clipped(high=8)
    failover  = arr.constant(3).then(arr.bursty(), at=0.5)
    scenario  = rush_hour.materialize(slices=200, peak=10, seed=7)

Every process is deterministic under a seed: materialisation draws all
randomness from one ``random.Random(seed)`` stream, so a (process,
slices, peak, seed) tuple always reproduces the same scenario — the same
property the paper's Case 6 relies on.
"""

from __future__ import annotations

import csv
import json
import math
import random
from pathlib import Path

from ..errors import WorkloadError
from .scenarios import Scenario

__all__ = [
    "ArrivalProcess",
    "constant",
    "periodic_spike",
    "pulsing",
    "uniform",
    "poisson",
    "bursty",
    "diurnal",
    "trace",
    "load_trace",
    "scenario_from_trace",
]


def _require_positive(name: str, value) -> None:
    if value is None or value <= 0:
        raise WorkloadError(f"{name} must be positive, got {value!r}")


def _require_probability(name: str, value) -> None:
    if not 0.0 <= value <= 1.0:
        raise WorkloadError(f"{name} must lie in [0, 1], got {value!r}")


class ArrivalProcess:
    """A composable generator of per-slice inference loads.

    Subclasses implement :meth:`sample`, producing one (possibly
    fractional) load per slice; :meth:`materialize` rounds, clamps to the
    scenario's ``[0, peak]`` envelope (arrivals beyond the buffer's
    capacity are shed, matching a real admission controller) and wraps
    the result in a :class:`Scenario`.
    """

    #: Human-readable identity, used as the default scenario name.
    name = "arrivals"

    # -- the generator interface ------------------------------------------------

    def sample(self, slices: int, peak: int, rng: random.Random) -> list:
        """Raw per-slice loads (floats allowed) before rounding/clamping."""
        raise NotImplementedError

    def materialize(
        self,
        slices: int | None = None,
        peak: int = 10,
        seed: int = 2025,
        *,
        length: int | None = None,
        name: str | None = None,
    ) -> Scenario:
        """Sample the process into a concrete :class:`Scenario`.

        ``slices`` defaults to 50; ``length`` is an explicit alias of it
        (passing both with different values is an error so a typo cannot
        silently win).  Raw loads are rounded to the nearest integer and
        clamped into ``[0, peak]``.
        """
        if length is not None:
            if slices is not None and slices != length:
                raise WorkloadError(
                    f"conflicting lengths: slices={slices} but length={length}"
                )
            slices = length
        elif slices is None:
            slices = 50
        if not isinstance(slices, int) or slices <= 0:
            raise WorkloadError(
                f"scenario length must be a positive integer, got {slices!r}"
            )
        if not isinstance(peak, int) or peak <= 0:
            raise WorkloadError(
                f"scenario peak must be a positive integer, got {peak!r}"
            )
        rng = random.Random(seed)
        raw = self.sample(slices, peak, rng)
        if len(raw) != slices:
            raise WorkloadError(
                f"{type(self).__name__} produced {len(raw)} loads "
                f"for {slices} slices"
            )
        loads = tuple(
            max(0, min(peak, int(round(value)))) for value in raw
        )
        return Scenario(loads=loads, peak=peak, name=name or self.name)

    # -- combinators ------------------------------------------------------------

    def scaled(self, factor: float) -> "ArrivalProcess":
        """Multiply every load by ``factor`` (rounding at materialisation)."""
        return _Scaled(self, factor)

    def clipped(self, low: float = 0.0, high: float | None = None) -> "ArrivalProcess":
        """Clamp loads into ``[low, high]`` before the peak envelope."""
        return _Clipped(self, low, high)

    def then(self, other: "ArrivalProcess", at: float = 0.5) -> "ArrivalProcess":
        """Concatenate: this process for the first ``at`` fraction of the
        run, ``other`` for the rest."""
        return _Concat(self, other, at)

    def overlay(self, other: "ArrivalProcess") -> "ArrivalProcess":
        """Element-wise sum of two processes (clamped at materialisation)."""
        return _Overlay(self, other)

    def __add__(self, other: "ArrivalProcess") -> "ArrivalProcess":
        if not isinstance(other, ArrivalProcess):
            return NotImplemented
        return self.overlay(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# -- generators -----------------------------------------------------------------------


class _Constant(ArrivalProcess):
    def __init__(self, level: float) -> None:
        if level < 0:
            raise WorkloadError(f"constant level must be >= 0, got {level!r}")
        self.level = level
        self.name = f"constant({level:g})"

    def sample(self, slices, peak, rng):
        return [self.level] * slices


class _PeriodicSpike(ArrivalProcess):
    def __init__(self, period: int, baseline: float, spike: float | None) -> None:
        if not isinstance(period, int) or period <= 0:
            raise WorkloadError(
                f"spike period must be a positive integer, got {period!r}"
            )
        self.period = period
        self.baseline = baseline
        self.spike = spike
        self.name = f"periodic_spike(period={period})"

    def sample(self, slices, peak, rng):
        spike = peak if self.spike is None else self.spike
        return [
            spike if i % self.period == self.period - 1 else self.baseline
            for i in range(slices)
        ]


class _Pulsing(ArrivalProcess):
    def __init__(self, high_len: int, low_len: int, high: float | None,
                 low: float) -> None:
        _require_positive("pulse high length", high_len)
        _require_positive("pulse low length", low_len)
        self.high_len = high_len
        self.low_len = low_len
        self.high = high
        self.low = low
        self.name = f"pulsing({high_len}/{low_len})"

    def sample(self, slices, peak, rng):
        high = peak if self.high is None else self.high
        period = self.high_len + self.low_len
        return [
            high if i % period < self.high_len else self.low
            for i in range(slices)
        ]


class _Uniform(ArrivalProcess):
    def __init__(self, low: int, high: int | None) -> None:
        if not isinstance(low, int) or low < 0:
            raise WorkloadError(
                f"uniform low bound must be a non-negative integer, got {low!r}"
            )
        self.low = low
        self.high = high
        self.name = f"uniform({low}..{'peak' if high is None else high})"

    def sample(self, slices, peak, rng):
        high = peak if self.high is None else self.high
        if high < self.low:
            raise WorkloadError(
                f"uniform bounds are inverted: low={self.low} > high={high}"
            )
        return [rng.randint(self.low, high) for _ in range(slices)]


def _poisson_draw(rng: random.Random, rate: float) -> int:
    """One Poisson sample via Knuth's product-of-uniforms method."""
    if rate <= 0:
        return 0
    threshold = math.exp(-rate)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class _Poisson(ArrivalProcess):
    def __init__(self, rate: float) -> None:
        _require_positive("poisson rate", rate)
        self.rate = rate
        self.name = f"poisson(rate={rate:g})"

    def sample(self, slices, peak, rng):
        return [_poisson_draw(rng, self.rate) for _ in range(slices)]


class _Bursty(ArrivalProcess):
    """Two-state MMPP: calm Poisson traffic with seeded burst episodes."""

    def __init__(self, calm_rate: float, burst_rate: float,
                 p_burst: float, p_calm: float) -> None:
        _require_positive("calm rate", calm_rate)
        _require_positive("burst rate", burst_rate)
        _require_probability("burst entry probability", p_burst)
        _require_probability("burst exit probability", p_calm)
        self.calm_rate = calm_rate
        self.burst_rate = burst_rate
        self.p_burst = p_burst
        self.p_calm = p_calm
        self.name = f"bursty({calm_rate:g}->{burst_rate:g})"

    def sample(self, slices, peak, rng):
        loads = []
        bursting = False
        for _ in range(slices):
            flip = rng.random()
            if bursting:
                bursting = flip >= self.p_calm
            else:
                bursting = flip < self.p_burst
            rate = self.burst_rate if bursting else self.calm_rate
            loads.append(_poisson_draw(rng, rate))
        return loads


class _Diurnal(ArrivalProcess):
    """A sinusoidal day/night curve between ``trough`` and ``crest``."""

    def __init__(self, trough: float, crest: float | None,
                 period: int | None, phase: float) -> None:
        if trough < 0:
            raise WorkloadError(f"diurnal trough must be >= 0, got {trough!r}")
        if period is not None:
            _require_positive("diurnal period", period)
        self.trough = trough
        self.crest = crest
        self.period = period
        self.phase = phase
        self.name = "diurnal"

    def sample(self, slices, peak, rng):
        crest = peak if self.crest is None else self.crest
        if crest < self.trough:
            raise WorkloadError(
                f"diurnal crest {crest} is below trough {self.trough}"
            )
        period = self.period if self.period is not None else slices
        mid = (crest + self.trough) / 2.0
        amplitude = (crest - self.trough) / 2.0
        return [
            mid + amplitude * math.sin(
                2.0 * math.pi * (i / period + self.phase) - math.pi / 2.0
            )
            for i in range(slices)
        ]


class _Trace(ArrivalProcess):
    """Replay recorded loads, cycling when the run outlives the trace."""

    def __init__(self, loads, label: str = "trace") -> None:
        loads = tuple(loads)
        if not loads:
            raise WorkloadError("trace replay needs at least one load")
        for i, value in enumerate(loads):
            if not isinstance(value, (int, float)) or value < 0:
                raise WorkloadError(
                    f"trace load at position {i} must be a non-negative "
                    f"number, got {value!r}"
                )
        self.loads = loads
        self.name = label

    def sample(self, slices, peak, rng):
        return [self.loads[i % len(self.loads)] for i in range(slices)]


# -- combinator nodes -----------------------------------------------------------------


class _Scaled(ArrivalProcess):
    def __init__(self, inner: ArrivalProcess, factor: float) -> None:
        if factor < 0:
            raise WorkloadError(f"scale factor must be >= 0, got {factor!r}")
        self.inner = inner
        self.factor = factor
        self.name = f"{inner.name}*{factor:g}"

    def sample(self, slices, peak, rng):
        return [value * self.factor for value in self.inner.sample(slices, peak, rng)]


class _Clipped(ArrivalProcess):
    def __init__(self, inner: ArrivalProcess, low: float,
                 high: float | None) -> None:
        if high is not None and high < low:
            raise WorkloadError(
                f"clip bounds are inverted: low={low} > high={high}"
            )
        self.inner = inner
        self.low = low
        self.high = high
        self.name = f"clip({inner.name})"

    def sample(self, slices, peak, rng):
        high = peak if self.high is None else self.high
        return [
            max(self.low, min(high, value))
            for value in self.inner.sample(slices, peak, rng)
        ]


class _Concat(ArrivalProcess):
    def __init__(self, first: ArrivalProcess, second: ArrivalProcess,
                 at: float) -> None:
        if not 0.0 < at < 1.0:
            raise WorkloadError(
                f"concat split point must lie in (0, 1), got {at!r}"
            )
        self.first = first
        self.second = second
        self.at = at
        self.name = f"{first.name}+then+{second.name}"

    def sample(self, slices, peak, rng):
        head = max(1, min(slices - 1, round(slices * self.at))) if slices > 1 else slices
        tail = slices - head
        loads = self.first.sample(head, peak, rng)
        if tail:
            loads = list(loads) + list(self.second.sample(tail, peak, rng))
        return loads


class _Overlay(ArrivalProcess):
    def __init__(self, first: ArrivalProcess, second: ArrivalProcess) -> None:
        self.first = first
        self.second = second
        self.name = f"{first.name}+{second.name}"

    def sample(self, slices, peak, rng):
        a = self.first.sample(slices, peak, rng)
        b = self.second.sample(slices, peak, rng)
        return [x + y for x, y in zip(a, b)]


# -- public factories -----------------------------------------------------------------


def constant(level: float) -> ArrivalProcess:
    """A flat load of ``level`` inferences per slice."""
    return _Constant(level)


def periodic_spike(period: int = 10, baseline: float = 2,
                   spike: float | None = None) -> ArrivalProcess:
    """Spikes to ``spike`` (default: the peak) every ``period`` slices."""
    return _PeriodicSpike(period, baseline, spike)


def pulsing(high_len: int = 5, low_len: int = 5, high: float | None = None,
            low: float = 2) -> ArrivalProcess:
    """A square wave: ``high_len`` slices high, ``low_len`` slices low."""
    return _Pulsing(high_len, low_len, high, low)


def uniform(low: int = 1, high: int | None = None) -> ArrivalProcess:
    """Seeded uniform random load in ``[low, high]`` (default high: peak)."""
    return _Uniform(low, high)


def poisson(rate: float) -> ArrivalProcess:
    """Poisson arrivals at ``rate`` mean inferences per slice."""
    return _Poisson(rate)


def bursty(calm_rate: float = 2.0, burst_rate: float = 8.0,
           p_burst: float = 0.15, p_calm: float = 0.35) -> ArrivalProcess:
    """An MMPP: calm Poisson traffic with probabilistic burst episodes.

    Each slice the process flips state with probability ``p_burst``
    (calm -> burst) or ``p_calm`` (burst -> calm), then draws a Poisson
    load at the state's rate.
    """
    return _Bursty(calm_rate, burst_rate, p_burst, p_calm)


def diurnal(trough: float = 1, crest: float | None = None,
            period: int | None = None, phase: float = 0.0) -> ArrivalProcess:
    """A day/night sinusoid from ``trough`` to ``crest`` (default: peak).

    ``period`` defaults to the whole run (one day per scenario);
    ``phase`` shifts the curve by a fraction of the period.  The curve
    starts at the trough, crests mid-period and returns.
    """
    return _Diurnal(trough, crest, period, phase)


def trace(loads, label: str = "trace") -> ArrivalProcess:
    """Replay an explicit load sequence, cycling to fill the run."""
    return _Trace(loads, label)


def _loads_from_json(payload, source: str):
    if isinstance(payload, dict):
        if "loads" not in payload:
            raise WorkloadError(
                f"JSON trace {source} must be a list of loads or an object "
                f"with a 'loads' key; got keys {sorted(payload)}"
            )
        payload = payload["loads"]
    if not isinstance(payload, list):
        raise WorkloadError(
            f"JSON trace {source} must contain a list of loads, "
            f"got {type(payload).__name__}"
        )
    return payload


def _loads_from_csv(text: str, source: str):
    rows = [row for row in csv.reader(text.splitlines()) if row]
    if not rows:
        raise WorkloadError(f"CSV trace {source} is empty")
    #: Loads live in the last column; a non-numeric first row is a header.
    start = 0
    try:
        float(rows[0][-1])
    except ValueError:
        start = 1
    loads = []
    for index, row in enumerate(rows[start:], start=start):
        try:
            loads.append(float(row[-1]))
        except ValueError:
            raise WorkloadError(
                f"CSV trace {source} row {index + 1}: "
                f"{row[-1]!r} is not a number"
            ) from None
    return loads


def load_trace(path) -> ArrivalProcess:
    """Load a replay trace from a ``.json`` or ``.csv`` file.

    JSON traces are a list of per-slice loads or ``{"loads": [...]}``;
    CSV traces keep loads in the last column, with an optional header
    row.  The file's stem becomes the process name.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise WorkloadError(f"cannot read trace {path}: {error}") from None
    if path.suffix.lower() == ".json":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise WorkloadError(
                f"trace {path} is not valid JSON: {error}"
            ) from None
        loads = _loads_from_json(payload, str(path))
    elif path.suffix.lower() == ".csv":
        loads = _loads_from_csv(text, str(path))
    else:
        raise WorkloadError(
            f"trace {path} must be a .json or .csv file"
        )
    return _Trace(loads, label=path.stem)


def scenario_from_trace(path, slices: int | None = None, peak: int = 10,
                        seed: int = 2025) -> Scenario:
    """Materialise a trace file directly into a :class:`Scenario`.

    ``slices`` defaults to the trace's own length (no cycling).
    """
    process = load_trace(path)
    count = slices if slices is not None else len(process.loads)
    return process.materialize(slices=count, peak=peak, seed=seed)
