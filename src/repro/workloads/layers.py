"""Layer algebra: parameter and MAC counting for CNN building blocks.

The benchmark models are CNN backbones; their placement-relevant
characteristics are weight counts (what must be stored) and MAC counts
(what must be computed).  These classes compute both from layer shapes,
exactly as one would when porting a model to a PIM fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError


@dataclass(frozen=True)
class LayerStats:
    """Summary of one layer: weights to store, MACs to run, output shape."""

    name: str
    params: int
    macs: int
    out_shape: tuple


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise WorkloadError(
            f"conv output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


@dataclass(frozen=True)
class Conv2d:
    """A standard 2-D convolution over CHW tensors."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    bias: bool = False

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel, self.stride) <= 0:
            raise WorkloadError(f"layer {self.name}: non-positive shape field")

    def stats(self, in_shape: tuple) -> LayerStats:
        """Compute (params, macs, out_shape) for the given input CHW shape."""
        channels, height, width = in_shape
        if channels != self.in_channels:
            raise WorkloadError(
                f"layer {self.name}: expected {self.in_channels} input "
                f"channels, got {channels}"
            )
        out_h = _conv_out(height, self.kernel, self.stride, self.padding)
        out_w = _conv_out(width, self.kernel, self.stride, self.padding)
        params = (
            self.out_channels * self.in_channels * self.kernel * self.kernel
            + (self.out_channels if self.bias else 0)
        )
        macs = (
            out_h * out_w * self.out_channels
            * self.in_channels * self.kernel * self.kernel
        )
        return LayerStats(self.name, params, macs, (self.out_channels, out_h, out_w))


@dataclass(frozen=True)
class DepthwiseConv2d:
    """A depthwise (per-channel) convolution — MobileNet/EfficientNet staple."""

    name: str
    channels: int
    kernel: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if min(self.channels, self.kernel, self.stride) <= 0:
            raise WorkloadError(f"layer {self.name}: non-positive shape field")

    def stats(self, in_shape: tuple) -> LayerStats:
        """Compute (params, macs, out_shape) for the given input CHW shape."""
        channels, height, width = in_shape
        if channels != self.channels:
            raise WorkloadError(
                f"layer {self.name}: expected {self.channels} channels, "
                f"got {channels}"
            )
        out_h = _conv_out(height, self.kernel, self.stride, self.padding)
        out_w = _conv_out(width, self.kernel, self.stride, self.padding)
        params = self.channels * self.kernel * self.kernel
        macs = out_h * out_w * self.channels * self.kernel * self.kernel
        return LayerStats(self.name, params, macs, (self.channels, out_h, out_w))


@dataclass(frozen=True)
class Linear:
    """A fully connected layer (flattens its input)."""

    name: str
    in_features: int
    out_features: int
    bias: bool = True

    def __post_init__(self) -> None:
        if min(self.in_features, self.out_features) <= 0:
            raise WorkloadError(f"layer {self.name}: non-positive shape field")

    def stats(self, in_shape: tuple) -> LayerStats:
        """Compute (params, macs, out_shape); input is flattened."""
        flat = 1
        for dim in in_shape:
            flat *= dim
        if flat != self.in_features:
            raise WorkloadError(
                f"layer {self.name}: expected {self.in_features} inputs, "
                f"got {flat}"
            )
        params = self.in_features * self.out_features + (
            self.out_features if self.bias else 0
        )
        macs = self.in_features * self.out_features
        return LayerStats(self.name, params, macs, (self.out_features,))


def network_stats(layers, in_shape: tuple):
    """Run shape inference through a layer list; returns per-layer stats."""
    shape = in_shape
    stats = []
    for layer in layers:
        layer_stats = layer.stats(shape)
        stats.append(layer_stats)
        shape = layer_stats.out_shape
    return stats
