"""The sweep coordinator: chunks, leases and work-stealing over TCP.

One coordinator owns one sweep: the grid is partitioned once into
hash-stable chunks (:func:`repro.store.sharding.partition_chunks`) and
served to workers over the v2 wire protocol.  A CLAIM hands out the
largest available chunk — preferring never-granted chunks, then
*stealing* chunks whose lease expired (a dead or wedged worker) — with
a :class:`~repro.dist.leases.LeaseManager` grant whose files live
beside the store, so grants survive a coordinator restart.  HEARTBEAT
and PROGRESS renew the lease; COMPLETE retires the chunk and releases
it.  When every chunk is complete the done event fires, further CLAIMs
answer ``{"type": "EMPTY", "done": true}``, and workers drain away.

The coordinator never computes and never aggregates results — workers
write straight into the shared store, which is what makes stealing
safe: re-running a half-finished chunk re-serves the finished configs
from the store and computes only the remainder.

Live observability: PROGRESS reports feed a
:class:`~repro.service.telemetry.MetricsRegistry` (counters per worker
plus sweep-wide gauges), scraped over METRICS as line protocol or over
STATUS as the JSON body ``repro status --json`` renders.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from dataclasses import dataclass, field

from ..api.config import ExperimentConfig
from ..errors import ProtocolError, ServiceError
from ..obs import events as obs_events
from ..obs import tracing as obs_tracing
from ..service import protocol
from ..service.daemon import DEFAULT_HOST, _Handler
from ..service.telemetry import MetricsRegistry
from ..store.sharding import partition_chunks
from .leases import LeaseManager

__all__ = ["SweepCoordinator", "DEFAULT_CHUNK_SIZE", "DEFAULT_LEASE_S"]

#: Configs per chunk: small enough that stealing a dead worker's chunk
#: is cheap, large enough that claim round-trips stay negligible.
DEFAULT_CHUNK_SIZE = 8

#: Seconds a granted chunk lives without a heartbeat before any idle
#: worker may steal it.
DEFAULT_LEASE_S = 30.0

#: What an idle worker is told to wait before re-CLAIMing when every
#: remaining chunk is under a live lease.
RETRY_S = 0.5


@dataclass
class _Chunk:
    """One unit of work travelling through the coordinator."""

    index: int
    configs: tuple
    done: bool = False
    #: Configs the current holder has reported finished (PROGRESS).
    completed: int = 0
    #: Times this chunk was granted (1 = never stolen).
    grants: int = 0


@dataclass
class _Worker:
    """Per-worker accounting behind STATUS throughput numbers."""

    first_seen: float
    last_seen: float
    chunks_completed: int = 0
    configs_completed: int = 0
    #: Progress inside the currently-held chunk (not yet COMPLETE).
    inflight: int = 0

    def throughput(self, now: float) -> float:
        """Configs per second over this worker's observed lifetime."""
        elapsed = max(now - self.first_seen, 1e-9)
        return (self.configs_completed + self.inflight) / elapsed


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = False
    daemon_threads = True


class SweepCoordinator:
    """Serves one sweep grid to work-stealing workers.

    ``configs`` is the (already sharded, if requested) grid;
    ``store`` the shared experiment store workers write into (a
    :class:`~repro.store.Store` or directory path).  ``chunk_size``,
    ``lease_s`` and ``clock`` parameterise chunking and lease expiry
    (tests inject a manual clock); ``log`` overrides the structured
    stderr logger.  Start with :meth:`start`, wait on :meth:`wait`,
    stop with :meth:`stop` — or drive requests directly through
    :meth:`dispatch` (the lease tests do).
    """

    def __init__(
        self,
        configs,
        store,
        host: str = DEFAULT_HOST,
        port: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        lease_s: float = DEFAULT_LEASE_S,
        clock=time.time,
        log=None,
    ) -> None:
        """See the class docstring."""
        from ..api.engine import _coerce_store

        self.store = _coerce_store(store)
        if self.store is None:
            raise ServiceError("a sweep coordinator needs a store")
        self.configs = tuple(configs)
        self.host = host
        self.requested_port = port
        self.clock = clock
        self._log_sink = log
        self.events = obs_events.EventLog("repro-sweep-coordinator", sink=log)
        self._chunks = [
            _Chunk(index=i, configs=chunk)
            for i, chunk in enumerate(
                partition_chunks(self.configs, chunk_size)
            )
        ]
        self.leases = LeaseManager(
            self.store.root / "leases", ttl_s=lease_s, clock=clock
        )
        self._lock = threading.Lock()
        self._workers: dict = {}
        self._done = threading.Event()
        if not self._chunks:
            self._done.set()
        self._server: _Server | None = None
        self._started_s: float | None = None
        self.metrics = MetricsRegistry()
        sweep = "repro_dist_sweep"
        self._m_total = self.metrics.gauge(sweep, "chunks_total")
        self._m_total.set(len(self._chunks))
        self._m_completed = self.metrics.counter(sweep, "chunks_completed")
        self._m_stolen = self.metrics.counter(sweep, "chunks_stolen")
        self._m_configs = self.metrics.counter(sweep, "configs_completed")
        self.metrics.gauge(sweep, "configs_total").set(len(self.configs))

    # -- lifecycle ---------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    def start(self) -> None:
        """Bind the socket and start the acceptor thread."""
        if self._server is not None:
            raise ServiceError("coordinator already started")
        try:
            self._server = _Server((self.host, self.requested_port), _Handler)
        except OSError as error:
            raise ServiceError(
                f"cannot listen on {self.host}:{self.requested_port}: "
                f"{error.strerror or error}"
            ) from error
        # _Handler reads `server.serve_daemon`; anything with a
        # dispatch() fits.
        self._server.serve_daemon = self
        self._started_s = time.monotonic()
        acceptor = threading.Thread(
            target=self._server.serve_forever,
            name="sweep-coordinator",
            daemon=True,
        )
        acceptor.start()
        obs_events.install(self.events)
        self.events.emit(
            "listening", host=self.host, port=self.port, pid=os.getpid(),
            chunks=len(self._chunks), configs=len(self.configs),
            store=str(self.store.root),
        )

    def stop(self) -> None:
        """Stop the acceptor and close the socket."""
        server, self._server = self._server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        self.events.emit(
            "stopped", done=self._done.is_set(),
            chunks_completed=self._m_completed.value,
        )
        obs_events.uninstall(self.events)
        self.events.close()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every chunk completes; True when the sweep is done."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        """Whether every chunk has been completed."""
        return self._done.is_set()

    # -- request dispatch --------------------------------------------------------

    def dispatch(self, message: dict) -> dict:
        """Answer one inbound request message with a reply message."""
        rtype = protocol.validate_request(message)
        if rtype in protocol.DIST_TYPES and message.get("trace"):
            # Workers drain their span buffers into every sweep verb;
            # fold them into this process's trace for the merged export.
            tracer = obs_tracing.active_tracer()
            if tracer is not None:
                tracer.add_foreign_spans(message["trace"])
        if rtype == "PING":
            return protocol.request("PING") | {"type": "PONG"}
        if rtype == "CLAIM":
            return self._handle_claim(message)
        if rtype == "HEARTBEAT":
            return self._handle_renew(message, completed=None)
        if rtype == "PROGRESS":
            return self._handle_renew(
                message, completed=message["completed"]
            )
        if rtype == "COMPLETE":
            return self._handle_complete(message)
        if rtype == "STATUS":
            return {
                "v": protocol.PROTOCOL_VERSION,
                "type": "STATUS",
                **self.status(),
            }
        if rtype == "METRICS":
            obs = "repro_obs"
            self.metrics.gauge(obs, "spans_recorded").set(
                self.spans_recorded
            )
            self.metrics.gauge(obs, "events_logged").set(
                self.events.events_logged
            )
            return {
                "v": protocol.PROTOCOL_VERSION,
                "type": "METRICS",
                "body": self.metrics.render(),
            }
        if rtype == "SHUTDOWN":
            threading.Thread(target=self.stop, daemon=True).start()
            return {"v": protocol.PROTOCOL_VERSION, "type": "STOPPING"}
        raise ProtocolError(
            f"{rtype} is not served by a sweep coordinator "
            f"(send it to repro serve)",
            code="unsupported",
        )

    def _touch(self, worker: str) -> _Worker:
        now = self.clock()
        state = self._workers.get(worker)
        if state is None:
            state = self._workers[worker] = _Worker(
                first_seen=now, last_seen=now
            )
        state.last_seen = now
        return state

    def _chunk(self, message: dict) -> _Chunk:
        index = message["chunk"]
        if not 0 <= index < len(self._chunks):
            raise ProtocolError(
                f"unknown chunk {index} (sweep has {len(self._chunks)})",
                code="unknown_chunk",
            )
        return self._chunks[index]

    def _handle_claim(self, message: dict) -> dict:
        worker = message["worker"]
        with self._lock:
            self._touch(worker)
            granted, stolen = self._next_grant(worker)
            if granted is None:
                return {
                    "v": protocol.PROTOCOL_VERSION,
                    "type": "EMPTY",
                    "done": self._done.is_set(),
                    "retry_s": RETRY_S,
                }
            granted.grants += 1
            granted.completed = 0
            if stolen:
                self._m_stolen.inc()
        self.events.emit(
            "chunk_granted", chunk=granted.index, worker=worker,
            configs=len(granted.configs), stolen=int(stolen),
        )
        reply = {
            "v": protocol.PROTOCOL_VERSION,
            "type": "CHUNK",
            "chunk": granted.index,
            "configs": [config.to_dict() for config in granted.configs],
            "lease_s": self.leases.ttl_s,
            "store": str(self.store.root),
        }
        if obs_tracing.active_tracer() is not None:
            reply["trace"] = True
        return reply

    def _next_grant(self, worker: str):
        """The best claimable chunk: fresh first, then expired grants.

        Fresh chunks go out largest-first (the classic LPT greedy):
        hash partitioning leaves chunk sizes uneven, and handing the
        big ones out early means the sweep's tail — the last chunks
        finishing while other workers idle — is bounded by the
        *smallest* chunks rather than the largest.  Ties break on
        index, so grant order stays deterministic.

        Returns ``(chunk, stolen)``; ``(None, False)`` when every
        pending chunk is under a live lease (or the sweep is done).
        """
        fresh = []
        reclaimable = []
        for chunk in self._chunks:
            if chunk.done:
                continue
            lease = self.leases.holder(chunk.index)
            if lease is None:
                fresh.append(chunk)
            elif lease.expired(self.clock()):
                reclaimable.append(chunk)
        fresh.sort(key=lambda chunk: (-len(chunk.configs), chunk.index))
        for chunk in fresh:
            if self.leases.claim(chunk.index, worker) is not None:
                return chunk, chunk.grants > 0
        for chunk in reclaimable:
            holder = self.leases.holder(chunk.index)
            if self.leases.claim(chunk.index, worker) is not None:
                self.events.emit(
                    "lease_expired", chunk=chunk.index,
                    worker=holder.worker if holder is not None else "?",
                )
                return chunk, True
        return None, False

    def _handle_renew(self, message: dict, completed) -> dict:
        worker = message["worker"]
        chunk = self._chunk(message)
        with self._lock:
            state = self._touch(worker)
            if chunk.done:
                # The chunk was stolen and finished by someone else;
                # the renewing worker must abandon its copy.
                raise ProtocolError(
                    f"chunk {chunk.index} already completed",
                    code="stale_lease",
                )
            lease = self.leases.renew(chunk.index, worker)
            if completed is not None:
                delta = max(0, completed - chunk.completed)
                chunk.completed = max(chunk.completed, completed)
                state.inflight += delta
                self._m_configs.inc(delta)
                self.metrics.counter(
                    "repro_dist_worker", "configs_completed",
                    {"worker": worker},
                ).inc(delta)
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "OK",
            "chunk": chunk.index,
            "expires": lease.expires,
        }

    def _handle_complete(self, message: dict) -> dict:
        worker = message["worker"]
        chunk = self._chunk(message)
        with self._lock:
            state = self._touch(worker)
            if chunk.done:
                raise ProtocolError(
                    f"chunk {chunk.index} already completed",
                    code="stale_lease",
                )
            self.leases.release(chunk.index, worker)
            chunk.done = True
            # COMPLETE implies the whole chunk ran, whatever the last
            # PROGRESS said; settle the remainder into the counters.
            delta = len(chunk.configs) - chunk.completed
            chunk.completed = len(chunk.configs)
            state.inflight = 0
            state.chunks_completed += 1
            state.configs_completed += chunk.completed
            self._m_completed.inc()
            if delta > 0:
                self._m_configs.inc(delta)
                self.metrics.counter(
                    "repro_dist_worker", "configs_completed",
                    {"worker": worker},
                ).inc(delta)
            done = all(c.done for c in self._chunks)
        self.events.emit(
            "chunk_completed", chunk=chunk.index, worker=worker,
            configs=len(chunk.configs),
        )
        if done:
            self._done.set()
            self.events.emit(
                "sweep_done", chunks=len(self._chunks),
                configs=len(self.configs),
            )
        return {
            "v": protocol.PROTOCOL_VERSION,
            "type": "OK",
            "chunk": chunk.index,
            "done": done,
        }

    # -- observability -----------------------------------------------------------

    def status(self) -> dict:
        """The coordinator-wide STATUS body (JSON-ready).

        ``chunks`` counts total/pending/leased/completed/stolen;
        ``workers`` maps each worker id to its chunk/config counts and
        configs-per-second throughput; ``configs`` tracks sweep-wide
        completion.
        """
        now = self.clock()
        with self._lock:
            leased = sum(
                1
                for chunk in self._chunks
                if not chunk.done
                and (lease := self.leases.holder(chunk.index)) is not None
                and not lease.expired(now)
            )
            completed = sum(1 for chunk in self._chunks if chunk.done)
            stolen = sum(
                max(0, chunk.grants - 1) for chunk in self._chunks
            )
            workers = {
                name: {
                    "chunks_completed": state.chunks_completed,
                    "configs_completed": state.configs_completed
                    + state.inflight,
                    "throughput_configs_s": state.throughput(now),
                    "last_seen_s": max(0.0, now - state.last_seen),
                }
                for name, state in sorted(self._workers.items())
            }
            configs_done = sum(chunk.completed for chunk in self._chunks)
        return {
            "pid": os.getpid(),
            "host": self.host,
            "port": self.port,
            "done": self._done.is_set(),
            "store": str(self.store.root),
            "lease_s": self.leases.ttl_s,
            "chunks": {
                "total": len(self._chunks),
                "pending": len(self._chunks) - completed - leased,
                "leased": leased,
                "completed": completed,
                "stolen": stolen,
            },
            "configs": {
                "total": len(self.configs),
                "completed": configs_done,
            },
            "workers": workers,
            "spans_recorded": self.spans_recorded,
            "events_logged": self.events.events_logged,
        }

    @property
    def spans_recorded(self) -> int:
        """Spans in the active tracer's buffer scope (0 when off)."""
        tracer = obs_tracing.active_tracer()
        return tracer.spans_recorded if tracer is not None else 0
