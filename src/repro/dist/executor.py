"""One-call distributed sweeps: coordinator + local worker pool.

:func:`distributed_sweep` is what ``repro sweep --workers N --store
DIR`` runs: start an in-process :class:`~repro.dist.coordinator.
SweepCoordinator` on an ephemeral port, spawn N ``repro sweep-worker``
subprocesses pointed at it (inheriting the environment, so store and
LUT-cache overrides propagate), wait for every chunk to complete, and
return the grid's :class:`~repro.api.results.StoredResultSet` — the
same lazy, byte-identical-export view a single-process spill sweep
returns, because both are just reads of the same content-addressed
store.

Worker death is survivable by design (the next CLAIM steals the
expired chunk), but *total* worker loss would wait forever; the
executor watches its pool and fails fast with the dead workers' last
stderr lines when nobody is left to finish the sweep.  Extra remote
workers may attach to the printed port at any time — the pool here is
a convenience, not a boundary.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from ..api.results import StoredResultSet
from ..errors import ServiceError
from ..obs import tracing as obs_tracing
from .coordinator import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_LEASE_S,
    SweepCoordinator,
)

__all__ = ["distributed_sweep", "spawn_worker"]

#: How often the executor polls the coordinator and its worker pool.
POLL_S = 0.1


def spawn_worker(host: str, port: int, worker: str,
                 env: dict | None = None) -> subprocess.Popen:
    """Start one ``repro sweep-worker`` subprocess against a coordinator.

    Runs ``python -m repro`` (not the console script) so worker spawn
    works from a source checkout and a test harness alike; the child
    inherits this process's environment plus any ``env`` overrides.
    Stderr is piped — the executor keeps it for failure reports.
    """
    merged = dict(os.environ)
    if env:
        merged.update(env)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep-worker",
            "--connect", f"{host}:{port}", "--id", worker,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=merged,
        text=True,
    )


def distributed_sweep(
    configs,
    store,
    workers: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    lease_s: float = DEFAULT_LEASE_S,
    host: str = "127.0.0.1",
    port: int = 0,
    log=None,
    env: dict | None = None,
    timeout: float | None = None,
    status_sink=None,
    trace=None,
) -> StoredResultSet:
    """Run a config grid across a local pool of worker processes.

    ``configs`` is the expanded (and, if requested, sharded) grid;
    ``store`` the shared experiment store (everything lands there).
    ``workers=0`` starts a coordinator with no local pool and blocks
    until remotely-attached workers finish the sweep — the CI smoke
    test and multi-machine runs use this.  ``timeout`` bounds the whole
    sweep (``None`` = wait forever, as long as live workers remain).
    ``status_sink`` receives the coordinator's final STATUS body (how
    the CLI reports chunk/steal counts).  Returns the grid's
    :class:`StoredResultSet`.

    ``trace`` names a file to receive the sweep-wide merged trace
    (Chrome trace JSON, or a raw span dump for a ``.jsonl`` path):
    a tracer is activated for the coordinator process (unless one
    already is), CHUNK replies ask every worker to record and ship
    spans back, and the merged timeline is written when the sweep
    ends.  ``None`` leaves tracing exactly as the caller set it up.
    """
    if workers < 0:
        raise ServiceError(f"need a non-negative worker count, got {workers}")
    own_tracer = False
    if trace is not None and obs_tracing.active_tracer() is None:
        obs_tracing.activate(proc="coordinator")
        own_tracer = True
    try:
        with obs_tracing.span(
            "dist.sweep", workers=workers, configs=len(configs)
        ):
            return _distributed_sweep(
                configs, store, workers, chunk_size, lease_s,
                host, port, log, env, timeout, status_sink,
            )
    finally:
        tracer = obs_tracing.active_tracer()
        if trace is not None and tracer is not None:
            tracer.trace().write(trace)
        if own_tracer:
            obs_tracing.deactivate()


def _distributed_sweep(
    configs, store, workers, chunk_size, lease_s,
    host, port, log, env, timeout, status_sink,
) -> StoredResultSet:
    """The :func:`distributed_sweep` body (split out for the span)."""
    coordinator = SweepCoordinator(
        configs, store, host=host, port=port,
        chunk_size=chunk_size, lease_s=lease_s, log=log,
    )
    coordinator.start()
    pool = {}
    failures = []
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        for index in range(workers):
            name = f"w{index}-{os.getpid()}"
            pool[name] = spawn_worker(
                coordinator.host, coordinator.port, name, env=env
            )
        while not coordinator.wait(POLL_S):
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"distributed sweep timed out after {timeout:.1f}s "
                    f"({coordinator.status()['chunks']})"
                )
            for name, process in list(pool.items()):
                code = process.poll()
                if code is None:
                    continue
                del pool[name]
                if code != 0:
                    stderr = (process.stderr.read() or "").strip()
                    tail = stderr.splitlines()[-3:]
                    failures.append(
                        f"{name} exited {code}"
                        + (f": {' | '.join(tail)}" if tail else "")
                    )
            if workers and not pool and not coordinator.done:
                chunks = coordinator.status()["chunks"]
                detail = "; ".join(failures) or "all workers exited early"
                raise ServiceError(
                    f"distributed sweep stalled: no live workers remain "
                    f"and {chunks['completed']}/{chunks['total']} chunks "
                    f"are done ({detail})"
                )
        for process in pool.values():
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
        if status_sink is not None:
            status_sink(coordinator.status())
    finally:
        for process in pool.values():
            if process.poll() is None:
                process.kill()
        for process in pool.values():
            if process.stderr is not None:
                process.stderr.close()
        coordinator.stop()
    from ..api.engine import _coerce_store

    return StoredResultSet(_coerce_store(store), tuple(configs))
