"""The sweep worker: a claim loop around the engine's spill executor.

``repro sweep-worker --connect HOST:PORT`` runs :func:`run_worker`:
CLAIM a chunk, execute its configs through one warm
:class:`~repro.api.engine.Engine` attached to the coordinator-named
store (``resume=True``, ``spill=True`` — records persist and drop, so
worker memory stays bounded however large the sweep), report PROGRESS
between sub-batches (which renews the lease), COMPLETE, repeat until
the coordinator answers ``done``.  A ``stale_lease`` error at any
point means the chunk was stolen — the worker abandons it mid-flight
and claims fresh work; the store's idempotence makes the overlap
harmless.

Workers hold no sweep state: everything they know arrives in the CHUNK
reply (configs, store path, lease TTL), so a worker can attach from
any machine that shares the store path.

Two environment knobs exist for the test and bench harnesses, both
ignored when unset:

* ``REPRO_DIST_TEST_STALL_S`` — after the first sub-batch of the first
  chunk, sleep this long *without renewing the lease* (how the
  differential test makes a worker lose its chunk deterministically,
  and how the SIGKILL test parks a victim mid-chunk);
* ``REPRO_DIST_RUN_STALL_S`` — sleep this long per config after
  computing it, simulating heavier per-run cost; the dist bench
  applies it identically to both its passes so the measured speedup
  reflects executor overlap, not machine core count.
"""

from __future__ import annotations

import os
import socket
import time

from ..errors import ServiceError
from ..obs import events as obs_events
from ..obs import tracing as obs_tracing
from ..service import protocol
from ..service.client import RemoteError

__all__ = ["CoordinatorClient", "run_worker", "PROGRESS_BATCH"]

#: Configs a worker computes between PROGRESS reports; each report
#: renews the lease, so this bounds how much work one heartbeat covers.
PROGRESS_BATCH = 4


class CoordinatorClient:
    """One request/reply exchange per call against a sweep coordinator.

    The same one-connection-per-exchange discipline as
    :class:`~repro.service.client.ServeClient`: the coordinator is the
    stateful side, clients stay trivially restartable.  Typed ERROR
    replies surface as :class:`~repro.service.client.RemoteError` with
    the machine code preserved (callers branch on ``stale_lease``).
    """

    def __init__(self, host: str, port: int, worker: str,
                 timeout: float = 30.0) -> None:
        """``worker`` is this client's claim identity."""
        self.host = host
        self.port = port
        self.worker = worker
        self.timeout = timeout

    def _exchange(self, message: dict) -> dict:
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                protocol.send_message(sock, message)
                reply = protocol.recv_message(sock)
        except protocol.ConnectionClosed as error:
            raise ServiceError(
                f"coordinator at {self.host}:{self.port} closed the "
                f"connection without replying"
            ) from error
        except OSError as error:
            raise ServiceError(
                f"cannot reach coordinator at {self.host}:{self.port}: "
                f"{error.strerror or error} (is the sweep still running?)"
            ) from error
        if reply.get("type") == "ERROR":
            raise RemoteError(
                reply.get("error", "unspecified coordinator error"),
                code=reply.get("code", "bad_message"),
            )
        return reply

    def _request(self, rtype: str, trace: list | None, **fields) -> dict:
        message = protocol.request(rtype, worker=self.worker, **fields)
        if trace:
            message["trace"] = trace
        return self._exchange(message)

    def claim(self, trace: list | None = None) -> dict:
        """Ask for the next chunk; a CHUNK or EMPTY reply dict.

        ``trace`` (here and on the other verbs) is an optional list of
        drained span records to ship to a tracing coordinator.
        """
        return self._request("CLAIM", trace)

    def heartbeat(self, chunk: int, trace: list | None = None) -> dict:
        """Renew the lease on ``chunk``."""
        return self._request("HEARTBEAT", trace, chunk=chunk)

    def progress(self, chunk: int, completed: int,
                 trace: list | None = None) -> dict:
        """Report ``completed`` configs done in ``chunk``; renews too."""
        return self._request("PROGRESS", trace, chunk=chunk,
                             completed=completed)

    def complete(self, chunk: int, trace: list | None = None) -> dict:
        """Mark ``chunk`` finished and release its lease."""
        return self._request("COMPLETE", trace, chunk=chunk)

    def status(self) -> dict:
        """The coordinator's STATUS body."""
        reply = self._exchange(protocol.request("STATUS"))
        return {
            key: value for key, value in reply.items()
            if key not in ("v", "type")
        }

    def ping(self) -> bool:
        """True when a coordinator answers at ``(host, port)``."""
        try:
            return self._exchange(protocol.request("PING"))["type"] == "PONG"
        except ServiceError:
            return False


def _env_stall(name: str) -> float:
    value = os.environ.get(name, "")
    try:
        return max(0.0, float(value)) if value else 0.0
    except ValueError:
        return 0.0


def run_worker(host: str, port: int, worker: str | None = None,
               max_workers: int | None = None, log=None) -> dict:
    """Attach one worker to a coordinator; returns a summary dict.

    Loops CLAIM → execute → COMPLETE until the coordinator reports the
    sweep done (or vanishes after at least one successful exchange —
    a coordinator that exits early means the sweep finished without
    this worker's last CLAIM, which is a clean end, not a failure).
    ``worker`` defaults to ``w-<hostname>-<pid>``; ``max_workers``
    passes through to ``Engine.run_many`` for intra-worker
    parallelism.  Returns ``{"worker", "chunks", "configs",
    "abandoned"}``.

    When a CHUNK reply carries ``trace: true`` (a tracing
    coordinator), the worker activates a local tracer (process label
    ``worker:<id>``), wraps each claim exchange and chunk execution in
    spans — the engine's own spans nest under the chunk span — and
    drains the buffer into the ``trace`` field of every subsequent
    request, so the coordinator assembles one sweep-wide trace.
    """
    from ..api.config import ExperimentConfig
    from ..api.engine import Engine

    if worker is None:
        worker = f"w-{socket.gethostname()}-{os.getpid()}"
    client = CoordinatorClient(host, port, worker)
    events = obs_events.EventLog("repro-sweep-worker", sink=log)
    tracer: obs_tracing.Tracer | None = None
    own_tracer = False

    def drained() -> list | None:
        # Only ship when the tracer is private to this worker: a
        # shared in-process tracer already holds the spans locally.
        if own_tracer and tracer is not None:
            return tracer.drain()
        return None

    test_stall = _env_stall("REPRO_DIST_TEST_STALL_S")
    run_stall = _env_stall("REPRO_DIST_RUN_STALL_S")
    engine: Engine | None = None
    chunks_done = 0
    configs_done = 0
    abandoned = 0
    attached = False
    events.emit("started", worker=worker, coordinator=f"{host}:{port}")
    try:
        while True:
            claim_start = time.perf_counter_ns()
            try:
                reply = client.claim(trace=drained())
            except RemoteError:
                raise
            except ServiceError:
                if attached:
                    # The coordinator finished and left between claims.
                    break
                raise
            claim_end = time.perf_counter_ns()
            attached = True
            granted = reply["type"] == "CHUNK"
            if granted and reply.get("trace") and tracer is None:
                tracer = obs_tracing.active_tracer()
                if tracer is None:
                    tracer = obs_tracing.activate(proc=f"worker:{worker}")
                    own_tracer = True
            if tracer is not None:
                extra = {"chunk": reply["chunk"]} if granted else {}
                tracer.record(
                    "worker.claim", claim_start, claim_end,
                    granted=granted, **extra,
                )
            if not granted:
                if reply.get("done"):
                    break
                time.sleep(float(reply.get("retry_s", 0.5)))
                continue
            chunk = reply["chunk"]
            configs = tuple(
                ExperimentConfig.from_dict(data)
                for data in reply["configs"]
            )
            if engine is None:
                engine = Engine(store=reply["store"], resume=True)
            stolen = False
            completed = 0
            chunk_span = obs_tracing.span(
                "worker.chunk", chunk=chunk, configs=len(configs)
            )
            with chunk_span:
                for start in range(0, len(configs), PROGRESS_BATCH):
                    batch = configs[start : start + PROGRESS_BATCH]
                    engine.run_many(
                        batch, max_workers=max_workers, spill=True
                    )
                    if run_stall:
                        time.sleep(run_stall * len(batch))
                    completed += len(batch)
                    if test_stall and chunks_done == 0 and start == 0:
                        # Park without renewing: lease expires under us.
                        events.emit("test_stall", chunk=chunk,
                                    stall_s=test_stall)
                        time.sleep(test_stall)
                        test_stall = 0.0
                    try:
                        client.progress(chunk, completed, trace=drained())
                    except RemoteError as error:
                        if error.code == "stale_lease":
                            stolen = True
                            break
                        raise
                chunk_span.annotate(completed=not stolen)
            if stolen:
                abandoned += 1
                events.emit("chunk_abandoned", chunk=chunk, worker=worker)
                continue
            try:
                done = client.complete(
                    chunk, trace=drained()
                ).get("done", False)
            except RemoteError as error:
                if error.code == "stale_lease":
                    abandoned += 1
                    events.emit("chunk_abandoned", chunk=chunk,
                                worker=worker)
                    continue
                raise
            chunks_done += 1
            configs_done += len(configs)
            if done:
                break
    finally:
        if own_tracer:
            obs_tracing.deactivate()
    events.emit(
        "finished", worker=worker, chunks=chunks_done,
        configs=configs_done, abandoned=abandoned,
    )
    return {
        "worker": worker,
        "chunks": chunks_done,
        "configs": configs_done,
        "abandoned": abandoned,
    }
