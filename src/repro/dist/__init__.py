"""Work-stealing distributed sweep execution on top of the store.

A sweep grid becomes a set of hash-stable config **chunks**
(:func:`repro.store.sharding.partition_chunks`); one
:class:`~repro.dist.coordinator.SweepCoordinator` hands chunks to any
number of worker processes over the v2 wire protocol
(:mod:`repro.service.protocol`: CLAIM/HEARTBEAT/PROGRESS/COMPLETE) and
guards each grant with a filesystem **lease**
(:mod:`repro.dist.leases`).  Workers are thin loops around
``Engine.run_many(..., spill=True)`` writing into one shared
experiment store, so the system needs no consensus: every run is
idempotent and content-addressed, a worker that dies simply stops
renewing its lease, and the next idle worker *steals* the expired
chunk.  The aggregated :class:`~repro.api.results.StoredResultSet` is
byte-identical to a single-process sweep — pinned by a differential
test that SIGKILLs a worker mid-sweep.

Entry points: ``repro sweep --workers N --store DIR`` spawns a local
coordinator plus N workers (:func:`~repro.dist.executor.
distributed_sweep`); ``repro sweep-worker --connect HOST:PORT``
attaches another process — on any machine sharing the store — to a
running coordinator.
"""

from .coordinator import SweepCoordinator
from .executor import distributed_sweep
from .leases import Lease, LeaseManager
from .worker import CoordinatorClient, run_worker

__all__ = [
    "SweepCoordinator",
    "distributed_sweep",
    "Lease",
    "LeaseManager",
    "CoordinatorClient",
    "run_worker",
]
