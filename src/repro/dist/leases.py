"""Filesystem leases: one JSON file per granted chunk, atomically owned.

A lease is the coordinator's durable record that a chunk is out with a
worker.  Grants are atomic (``O_CREAT | O_EXCL``), renewals rewrite the
file through the store's tmp-then-``os.replace`` idiom, and release
unlinks it — so a finished sweep leaves an *empty* lease directory, and
a coordinator restarted over the same store sees exactly the grants
that were live when it died.

Expiry is the whole failure model: a worker that crashes simply stops
renewing, the lease's ``expires`` timestamp passes, and the next
:meth:`LeaseManager.claim` hands the chunk to someone else (recorded as
a renewal-count reset and a new holder).  Time comes from an injectable
``clock`` so the tests exercise expiry and reclaim without sleeping.

Runs are idempotent through the content-addressed store, so the rare
race — a worker finishing just as its expired chunk is re-granted —
costs duplicate compute, never corrupt results; the COMPLETE of the
stale holder is rejected (``stale_lease``) and the new holder's
completion wins.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import ProtocolError

__all__ = ["Lease", "LeaseManager"]


@dataclass(frozen=True)
class Lease:
    """One granted chunk: who holds it and until when."""

    chunk: int
    worker: str
    granted: float
    expires: float
    renewals: int = 0

    def expired(self, now: float) -> bool:
        """Whether the holder has missed its renewal deadline."""
        return now >= self.expires

    def to_dict(self) -> dict:
        """The JSON body of the lease file."""
        return {
            "chunk": self.chunk,
            "worker": self.worker,
            "granted": self.granted,
            "expires": self.expires,
            "renewals": self.renewals,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        """Rebuild a lease from its file body."""
        return cls(
            chunk=int(data["chunk"]),
            worker=str(data["worker"]),
            granted=float(data["granted"]),
            expires=float(data["expires"]),
            renewals=int(data.get("renewals", 0)),
        )


class LeaseManager:
    """Grants, renews, releases and reclaims chunk leases under one dir.

    ``ttl_s`` is how long a grant lives without a renewal; ``clock`` is
    any zero-argument callable returning seconds (``time.time`` by
    default; tests inject a manual clock so expiry needs no sleeping).
    The manager never remembers state between calls — the files *are*
    the state — so a coordinator can be restarted over a live sweep.
    """

    def __init__(self, root, ttl_s: float = 30.0, clock=time.time) -> None:
        """See the class docstring; ``root`` is created if missing."""
        if ttl_s <= 0:
            raise ProtocolError(f"lease ttl must be positive, got {ttl_s}")
        self.root = Path(root)
        self.ttl_s = float(ttl_s)
        self.clock = clock
        self.root.mkdir(parents=True, exist_ok=True)

    # -- file plumbing -----------------------------------------------------------

    def path(self, chunk: int) -> Path:
        """The lease file for one chunk id."""
        return self.root / f"chunk-{chunk:06d}.lease"

    def _read(self, chunk: int) -> Lease | None:
        try:
            body = self.path(chunk).read_text(encoding="utf-8")
            return Lease.from_dict(json.loads(body))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError) as error:
            # A torn or corrupt lease file means the grant is
            # unknowable; treat it as expired so the chunk stays
            # claimable rather than stuck.
            raise ProtocolError(
                f"unreadable lease file {self.path(chunk)}: {error}"
            ) from error

    def _rewrite(self, lease: Lease) -> None:
        path = self.path(lease.chunk)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(lease.to_dict()), encoding="utf-8")
        os.replace(tmp, path)

    # -- the lease lifecycle -----------------------------------------------------

    def claim(self, chunk: int, worker: str) -> Lease | None:
        """Grant ``chunk`` to ``worker``; ``None`` if validly held.

        A fresh chunk is granted by atomic file creation; a chunk whose
        lease has expired is *reclaimed* — the stale file is rewritten
        in place and the previous holder's later COMPLETE/renewals are
        rejected as ``stale_lease``.  A chunk under a live lease
        (including this worker's own) returns ``None``.
        """
        now = self.clock()
        lease = Lease(
            chunk=chunk, worker=worker, granted=now, expires=now + self.ttl_s
        )
        try:
            handle = os.open(
                self.path(chunk), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            try:
                current = self._read(chunk)
            except ProtocolError:
                current = None  # corrupt grant: reclaimable
            if current is not None and not current.expired(now):
                return None
            # Expired (or vanished between the open and the read):
            # reclaim by rewrite.  Concurrent reclaims race benignly —
            # last writer wins, and the store keeps runs idempotent.
            self._rewrite(lease)
            return lease
        with os.fdopen(handle, "w", encoding="utf-8") as file:
            file.write(json.dumps(lease.to_dict()))
        return lease

    def renew(self, chunk: int, worker: str) -> Lease:
        """Extend ``worker``'s lease on ``chunk`` by one TTL.

        Raises a typed :class:`~repro.errors.ProtocolError`:
        ``stale_lease`` when the lease expired or now belongs to
        another worker (the caller must abandon the chunk), or
        ``unknown_chunk`` when no lease file exists at all.
        """
        now = self.clock()
        current = self._read(chunk)
        if current is None:
            raise ProtocolError(
                f"no lease on chunk {chunk} (released or never granted)",
                code="unknown_chunk",
            )
        if current.worker != worker or current.expired(now):
            raise ProtocolError(
                f"chunk {chunk} lease is stale for {worker!r}: held by "
                f"{current.worker!r}"
                + (" (expired)" if current.expired(now) else ""),
                code="stale_lease",
            )
        renewed = Lease(
            chunk=chunk,
            worker=worker,
            granted=current.granted,
            expires=now + self.ttl_s,
            renewals=current.renewals + 1,
        )
        self._rewrite(renewed)
        return renewed

    def release(self, chunk: int, worker: str) -> None:
        """Drop ``worker``'s lease on ``chunk`` (after its COMPLETE).

        Raises ``stale_lease`` when the chunk was reclaimed by another
        worker in the meantime — the completion must be discarded, the
        new holder owns the chunk now.  Releasing an already-released
        chunk is an ``unknown_chunk`` error.
        """
        current = self._read(chunk)
        if current is None:
            raise ProtocolError(
                f"no lease on chunk {chunk} (released or never granted)",
                code="unknown_chunk",
            )
        if current.worker != worker:
            raise ProtocolError(
                f"chunk {chunk} was reclaimed by {current.worker!r}; "
                f"{worker!r} must abandon it",
                code="stale_lease",
            )
        try:
            os.unlink(self.path(chunk))
        except FileNotFoundError:
            pass

    def holder(self, chunk: int) -> Lease | None:
        """The current lease on ``chunk`` (expired or not), if any."""
        return self._read(chunk)

    def active(self) -> list:
        """Every lease on disk, sorted by chunk id."""
        leases = []
        for path in sorted(self.root.glob("chunk-*.lease")):
            try:
                body = json.loads(path.read_text(encoding="utf-8"))
                leases.append(Lease.from_dict(body))
            except (OSError, ValueError, KeyError):
                continue
        return leases
