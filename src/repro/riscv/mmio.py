"""MMIO bus and the PIM doorbell bridge.

The Rocket core in the paper talks to HH-PIM over an AXI slave port; a
store to the PIM command register enqueues one PIM instruction word into
the PIM Instruction Queue.  :class:`PimMmioBridge` models that port:

* ``+0x0  CMD``     (write) push a 32-bit PIM instruction word
* ``+0x4  STATUS``  (read)  bit0 = queue full, bit1 = queue empty
* ``+0x8  LEVEL``   (read)  current queue occupancy
"""

from __future__ import annotations

from ..errors import MmioError, QueueFullError
from ..isa.queue import InstructionQueue


class MmioRegion:
    """Base class: a device mapped at [base, base+size)."""

    def __init__(self, base: int, size: int) -> None:
        if base < 0 or size <= 0:
            raise MmioError(f"bad MMIO region base={base:#x} size={size}")
        self.base = base
        self.size = size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this region."""
        return self.base <= address < self.base + self.size

    def load(self, offset: int, width: int) -> int:
        """Read ``width`` bytes at region-relative ``offset``."""
        raise NotImplementedError

    def store(self, offset: int, value: int, width: int) -> None:
        """Write ``width`` bytes at region-relative ``offset``."""
        raise NotImplementedError


class RamRegion(MmioRegion):
    """Plain little-endian RAM (instruction and data memory)."""

    def __init__(self, base: int, size: int) -> None:
        super().__init__(base, size)
        self._data = bytearray(size)

    def load(self, offset: int, width: int) -> int:
        if offset + width > self.size:
            raise MmioError(f"RAM load beyond region at offset {offset:#x}")
        return int.from_bytes(self._data[offset : offset + width], "little")

    def store(self, offset: int, value: int, width: int) -> None:
        if offset + width > self.size:
            raise MmioError(f"RAM store beyond region at offset {offset:#x}")
        self._data[offset : offset + width] = value.to_bytes(width, "little")

    def load_blob(self, offset: int, blob: bytes) -> None:
        """Bulk-initialise RAM contents (program loading)."""
        if offset + len(blob) > self.size:
            raise MmioError("program blob does not fit in RAM region")
        self._data[offset : offset + len(blob)] = blob


class PimMmioBridge(MmioRegion):
    """The PIM fabric's AXI slave port: doorbell + status registers."""

    CMD_OFFSET = 0x0
    STATUS_OFFSET = 0x4
    LEVEL_OFFSET = 0x8
    SIZE = 0x10

    def __init__(self, base: int, queue: InstructionQueue) -> None:
        super().__init__(base, self.SIZE)
        self.queue = queue
        self.rejected_pushes = 0

    def load(self, offset: int, width: int) -> int:
        if width != 4:
            raise MmioError("PIM bridge registers are 32-bit only")
        if offset == self.STATUS_OFFSET:
            return (1 if self.queue.full else 0) | (
                2 if self.queue.empty else 0
            )
        if offset == self.LEVEL_OFFSET:
            return len(self.queue)
        raise MmioError(f"PIM bridge: read of unmapped offset {offset:#x}")

    def store(self, offset: int, value: int, width: int) -> None:
        if width != 4:
            raise MmioError("PIM bridge registers are 32-bit only")
        if offset != self.CMD_OFFSET:
            raise MmioError(f"PIM bridge: write to read-only offset {offset:#x}")
        try:
            self.queue.push_word(value)
        except QueueFullError:
            # Hardware drops the doorbell write and raises the full flag;
            # software is expected to poll STATUS before pushing.
            self.rejected_pushes += 1


class MmioBus:
    """Address decoder dispatching loads/stores to mapped regions."""

    def __init__(self) -> None:
        self._regions: list = []

    def map(self, region: MmioRegion) -> MmioRegion:
        """Attach a region; overlapping mappings are rejected."""
        for existing in self._regions:
            if (
                region.base < existing.base + existing.size
                and existing.base < region.base + region.size
            ):
                raise MmioError(
                    f"region at {region.base:#x} overlaps one at "
                    f"{existing.base:#x}"
                )
        self._regions.append(region)
        return region

    def _find(self, address: int) -> MmioRegion:
        for region in self._regions:
            if region.contains(address):
                return region
        raise MmioError(f"access to unmapped address {address:#x}")

    def load(self, address: int, width: int) -> int:
        """Read ``width`` bytes at ``address``."""
        region = self._find(address)
        return region.load(address - region.base, width)

    def store(self, address: int, value: int, width: int) -> None:
        """Write ``width`` bytes at ``address``."""
        region = self._find(address)
        region.store(address - region.base, value, width)
