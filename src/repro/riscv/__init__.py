"""RISC-V substrate: a functional RV32IM ISS with an MMIO PIM bridge.

The paper's processor is built around a single RISC-V Rocket core that
issues dedicated PIM instructions to the HH-PIM fabric.  We reproduce the
command path with a compact functional RV32IM instruction-set simulator:
driver kernels (assembled by :mod:`repro.riscv.program`) store PIM
instruction words to a memory-mapped doorbell, and the MMIO bridge pushes
them into the PIM Instruction Queue exactly as the AXI slave port would.
"""

from .isa import Decoded, InstrFormat, decode
from .cpu import Cpu, CpuState
from .mmio import MmioBus, MmioRegion, PimMmioBridge, RamRegion
from .program import Program, asm

__all__ = [
    "Decoded",
    "InstrFormat",
    "decode",
    "Cpu",
    "CpuState",
    "MmioBus",
    "MmioRegion",
    "PimMmioBridge",
    "RamRegion",
    "Program",
    "asm",
]
