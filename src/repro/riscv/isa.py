"""RV32IM instruction decoding.

Implements the base integer ISA (RV32I) plus the M extension (multiply /
divide), which covers everything the PIM driver kernels and the benchmark
loops need.  Decoding returns a :class:`Decoded` record with the mnemonic,
register indices and the sign-extended immediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import IllegalInstructionError


class InstrFormat(str, Enum):
    """The six RV32 instruction encodings."""

    R = "R"
    I = "I"  # noqa: E741 - canonical RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"


@dataclass(frozen=True)
class Decoded:
    """One decoded RV32IM instruction."""

    mnemonic: str
    fmt: InstrFormat
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0


def _sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _imm_i(word: int) -> int:
    return _sign_extend(word >> 20, 12)


def _imm_s(word: int) -> int:
    raw = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
    return _sign_extend(raw, 12)


def _imm_b(word: int) -> int:
    raw = (
        (((word >> 31) & 0x1) << 12)
        | (((word >> 7) & 0x1) << 11)
        | (((word >> 25) & 0x3F) << 5)
        | (((word >> 8) & 0xF) << 1)
    )
    return _sign_extend(raw, 13)


def _imm_u(word: int) -> int:
    return _sign_extend(word & 0xFFFFF000, 32)


def _imm_j(word: int) -> int:
    raw = (
        (((word >> 31) & 0x1) << 20)
        | (((word >> 12) & 0xFF) << 12)
        | (((word >> 20) & 0x1) << 11)
        | (((word >> 21) & 0x3FF) << 1)
    )
    return _sign_extend(raw, 21)


_LOADS = {0b000: "lb", 0b001: "lh", 0b010: "lw", 0b100: "lbu", 0b101: "lhu"}
_STORES = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_BRANCHES = {
    0b000: "beq", 0b001: "bne", 0b100: "blt",
    0b101: "bge", 0b110: "bltu", 0b111: "bgeu",
}
_OP_IMM = {
    0b000: "addi", 0b010: "slti", 0b011: "sltiu",
    0b100: "xori", 0b110: "ori", 0b111: "andi",
}
_OP = {
    (0b000, 0b0000000): "add", (0b000, 0b0100000): "sub",
    (0b001, 0b0000000): "sll", (0b010, 0b0000000): "slt",
    (0b011, 0b0000000): "sltu", (0b100, 0b0000000): "xor",
    (0b101, 0b0000000): "srl", (0b101, 0b0100000): "sra",
    (0b110, 0b0000000): "or", (0b111, 0b0000000): "and",
}
_OP_M = {
    0b000: "mul", 0b001: "mulh", 0b010: "mulhsu", 0b011: "mulhu",
    0b100: "div", 0b101: "divu", 0b110: "rem", 0b111: "remu",
}


def decode(word: int) -> Decoded:
    """Decode one 32-bit instruction word; raises on illegal encodings."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == 0b0110111:
        return Decoded("lui", InstrFormat.U, rd=rd, imm=_imm_u(word))
    if opcode == 0b0010111:
        return Decoded("auipc", InstrFormat.U, rd=rd, imm=_imm_u(word))
    if opcode == 0b1101111:
        return Decoded("jal", InstrFormat.J, rd=rd, imm=_imm_j(word))
    if opcode == 0b1100111 and funct3 == 0:
        return Decoded("jalr", InstrFormat.I, rd=rd, rs1=rs1, imm=_imm_i(word))
    if opcode == 0b1100011:
        if funct3 not in _BRANCHES:
            raise IllegalInstructionError(f"bad branch funct3 {funct3}")
        return Decoded(
            _BRANCHES[funct3], InstrFormat.B, rs1=rs1, rs2=rs2, imm=_imm_b(word)
        )
    if opcode == 0b0000011:
        if funct3 not in _LOADS:
            raise IllegalInstructionError(f"bad load funct3 {funct3}")
        return Decoded(
            _LOADS[funct3], InstrFormat.I, rd=rd, rs1=rs1, imm=_imm_i(word)
        )
    if opcode == 0b0100011:
        if funct3 not in _STORES:
            raise IllegalInstructionError(f"bad store funct3 {funct3}")
        return Decoded(
            _STORES[funct3], InstrFormat.S, rs1=rs1, rs2=rs2, imm=_imm_s(word)
        )
    if opcode == 0b0010011:
        if funct3 == 0b001:
            if funct7 != 0:
                raise IllegalInstructionError("bad slli funct7")
            return Decoded("slli", InstrFormat.I, rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 0b101:
            if funct7 == 0b0000000:
                return Decoded("srli", InstrFormat.I, rd=rd, rs1=rs1, imm=rs2)
            if funct7 == 0b0100000:
                return Decoded("srai", InstrFormat.I, rd=rd, rs1=rs1, imm=rs2)
            raise IllegalInstructionError("bad shift-right funct7")
        return Decoded(
            _OP_IMM[funct3], InstrFormat.I, rd=rd, rs1=rs1, imm=_imm_i(word)
        )
    if opcode == 0b0110011:
        if funct7 == 0b0000001:
            return Decoded(_OP_M[funct3], InstrFormat.R, rd=rd, rs1=rs1, rs2=rs2)
        key = (funct3, funct7)
        if key not in _OP:
            raise IllegalInstructionError(f"bad OP funct3/7 {key}")
        return Decoded(_OP[key], InstrFormat.R, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == 0b1110011 and word in (0x00000073, 0x00100073):
        return Decoded("ecall" if word == 0x73 else "ebreak", InstrFormat.I)
    if opcode == 0b0001111:
        return Decoded("fence", InstrFormat.I)
    raise IllegalInstructionError(f"illegal instruction {word:#010x}")
