"""Functional RV32IM CPU.

A single-issue in-order core model: one instruction per cycle at the SoC
clock (the paper's prototype runs at 50 MHz), with loads/stores routed
through an :class:`~repro.riscv.mmio.MmioBus`.  ``ebreak`` halts; ``ecall``
is delivered to an optional handler (the examples use it as a putchar-like
hook).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RiscvError
from .isa import Decoded, decode
from .mmio import MmioBus

_MASK32 = 0xFFFFFFFF


def _to_signed(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def _to_unsigned(value: int) -> int:
    return value & _MASK32


@dataclass
class CpuState:
    """Architectural state: 32 registers and the program counter."""

    pc: int = 0
    regs: list = field(default_factory=lambda: [0] * 32)

    def read(self, index: int) -> int:
        """Read register ``x<index>`` (x0 is hard-wired to zero)."""
        return 0 if index == 0 else self.regs[index] & _MASK32

    def write(self, index: int, value: int) -> None:
        """Write register ``x<index>`` (writes to x0 are discarded)."""
        if index != 0:
            self.regs[index] = value & _MASK32


class Cpu:
    """Functional RV32IM core bound to an MMIO bus."""

    def __init__(self, bus: MmioBus, reset_pc: int = 0, clock_ns: float = 20.0):
        self.bus = bus
        self.state = CpuState(pc=reset_pc)
        self.clock_ns = clock_ns
        self.halted = False
        self.retired = 0
        self.ecall_handler = None

    # -- execution ------------------------------------------------------------

    def step(self) -> Decoded:
        """Fetch, decode and execute one instruction."""
        if self.halted:
            raise RiscvError("step on a halted CPU")
        word = self.bus.load(self.state.pc, 4)
        instr = decode(word)
        next_pc = (self.state.pc + 4) & _MASK32
        self._execute(instr, next_pc)
        self.retired += 1
        return instr

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until ``ebreak`` or the instruction budget; returns count."""
        start = self.retired
        while not self.halted and self.retired - start < max_instructions:
            self.step()
        if not self.halted:
            raise RiscvError(
                f"instruction budget {max_instructions} exhausted at "
                f"pc={self.state.pc:#x}"
            )
        return self.retired - start

    @property
    def elapsed_ns(self) -> float:
        """Wall time: one cycle per retired instruction at the SoC clock."""
        return self.retired * self.clock_ns

    # -- semantics --------------------------------------------------------------

    def _execute(self, instr: Decoded, next_pc: int) -> None:
        s = self.state
        rs1 = s.read(instr.rs1)
        rs2 = s.read(instr.rs2)
        m = instr.mnemonic
        pc = s.pc

        if m == "lui":
            s.write(instr.rd, instr.imm)
        elif m == "auipc":
            s.write(instr.rd, pc + instr.imm)
        elif m == "jal":
            s.write(instr.rd, next_pc)
            next_pc = (pc + instr.imm) & _MASK32
        elif m == "jalr":
            s.write(instr.rd, next_pc)
            next_pc = (rs1 + instr.imm) & _MASK32 & ~1
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = {
                "beq": rs1 == rs2,
                "bne": rs1 != rs2,
                "blt": _to_signed(rs1) < _to_signed(rs2),
                "bge": _to_signed(rs1) >= _to_signed(rs2),
                "bltu": rs1 < rs2,
                "bgeu": rs1 >= rs2,
            }[m]
            if taken:
                next_pc = (pc + instr.imm) & _MASK32
        elif m in ("lb", "lh", "lw", "lbu", "lhu"):
            address = (rs1 + instr.imm) & _MASK32
            width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[m]
            raw = self.bus.load(address, width)
            if m == "lb":
                raw = raw - 256 if raw & 0x80 else raw
            elif m == "lh":
                raw = raw - 65536 if raw & 0x8000 else raw
            s.write(instr.rd, raw)
        elif m in ("sb", "sh", "sw"):
            address = (rs1 + instr.imm) & _MASK32
            width = {"sb": 1, "sh": 2, "sw": 4}[m]
            self.bus.store(address, rs2 & ((1 << (8 * width)) - 1), width)
        elif m == "addi":
            s.write(instr.rd, rs1 + instr.imm)
        elif m == "slti":
            s.write(instr.rd, int(_to_signed(rs1) < instr.imm))
        elif m == "sltiu":
            s.write(instr.rd, int(rs1 < _to_unsigned(instr.imm)))
        elif m == "xori":
            s.write(instr.rd, rs1 ^ _to_unsigned(instr.imm))
        elif m == "ori":
            s.write(instr.rd, rs1 | _to_unsigned(instr.imm))
        elif m == "andi":
            s.write(instr.rd, rs1 & _to_unsigned(instr.imm))
        elif m == "slli":
            s.write(instr.rd, rs1 << (instr.imm & 0x1F))
        elif m == "srli":
            s.write(instr.rd, rs1 >> (instr.imm & 0x1F))
        elif m == "srai":
            s.write(instr.rd, _to_signed(rs1) >> (instr.imm & 0x1F))
        elif m == "add":
            s.write(instr.rd, rs1 + rs2)
        elif m == "sub":
            s.write(instr.rd, rs1 - rs2)
        elif m == "sll":
            s.write(instr.rd, rs1 << (rs2 & 0x1F))
        elif m == "slt":
            s.write(instr.rd, int(_to_signed(rs1) < _to_signed(rs2)))
        elif m == "sltu":
            s.write(instr.rd, int(rs1 < rs2))
        elif m == "xor":
            s.write(instr.rd, rs1 ^ rs2)
        elif m == "srl":
            s.write(instr.rd, rs1 >> (rs2 & 0x1F))
        elif m == "sra":
            s.write(instr.rd, _to_signed(rs1) >> (rs2 & 0x1F))
        elif m == "or":
            s.write(instr.rd, rs1 | rs2)
        elif m == "and":
            s.write(instr.rd, rs1 & rs2)
        elif m == "mul":
            s.write(instr.rd, _to_signed(rs1) * _to_signed(rs2))
        elif m == "mulh":
            s.write(instr.rd, (_to_signed(rs1) * _to_signed(rs2)) >> 32)
        elif m == "mulhsu":
            s.write(instr.rd, (_to_signed(rs1) * rs2) >> 32)
        elif m == "mulhu":
            s.write(instr.rd, (rs1 * rs2) >> 32)
        elif m == "div":
            s.write(instr.rd, self._div(_to_signed(rs1), _to_signed(rs2)))
        elif m == "divu":
            s.write(instr.rd, _MASK32 if rs2 == 0 else rs1 // rs2)
        elif m == "rem":
            s.write(instr.rd, self._rem(_to_signed(rs1), _to_signed(rs2)))
        elif m == "remu":
            s.write(instr.rd, rs1 if rs2 == 0 else rs1 % rs2)
        elif m == "ebreak":
            self.halted = True
        elif m == "ecall":
            if self.ecall_handler is not None:
                self.ecall_handler(self)
        elif m == "fence":
            pass
        else:  # pragma: no cover - decode() only emits the above
            raise RiscvError(f"unimplemented mnemonic {m}")

        self.state.pc = next_pc

    @staticmethod
    def _div(a: int, b: int) -> int:
        if b == 0:
            return -1
        if a == -(1 << 31) and b == -1:
            return a
        quotient = abs(a) // abs(b)
        return -quotient if (a < 0) != (b < 0) else quotient

    @staticmethod
    def _rem(a: int, b: int) -> int:
        if b == 0:
            return a
        if a == -(1 << 31) and b == -1:
            return 0
        remainder = abs(a) % abs(b)
        return -remainder if a < 0 else remainder
