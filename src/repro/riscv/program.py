"""Mini-assembler for RV32IM driver kernels.

Two-pass assembler supporting the instructions the ISS implements, labels,
and the common pseudo-instructions (``li``, ``mv``, ``j``, ``nop``).  The
examples use it to build the PIM driver kernels that the Rocket core runs
in the paper's prototype.

Syntax::

    loop:
        lw   t0, 4(a0)        # loads use offset(base)
        addi t1, t1, -1
        bne  t1, zero, loop
        sw   t2, 0(a0)
        ebreak
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AssemblerError

_ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def _reg(token: str, line_no: int) -> int:
    token = token.strip().rstrip(",")
    if token in _ABI_NAMES:
        return _ABI_NAMES[token]
    if token.startswith("x"):
        try:
            index = int(token[1:])
        except ValueError:
            index = -1
        if 0 <= index < 32:
            return index
    raise AssemblerError(f"line {line_no}: unknown register {token!r}")


def _encode_r(opcode, rd, funct3, rs1, rs2, funct7):
    return (
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | (rd << 7) | opcode
    )


def _encode_i(opcode, rd, funct3, rs1, imm):
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _encode_s(opcode, funct3, rs1, rs2, imm):
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode
    )


def _encode_b(opcode, funct3, rs1, rs2, imm):
    imm &= 0x1FFF
    return (
        (((imm >> 12) & 0x1) << 31) | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 0x1) << 7) | opcode
    )


def _encode_u(opcode, rd, imm):
    return (imm & 0xFFFFF000) | (rd << 7) | opcode


def _encode_j(opcode, rd, imm):
    imm &= 0x1FFFFF
    return (
        (((imm >> 20) & 0x1) << 31) | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 0x1) << 20) | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7) | opcode
    )


_R_OPS = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000), "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001), "mulh": (0b001, 0b0000001),
    "mulhsu": (0b010, 0b0000001), "mulhu": (0b011, 0b0000001),
    "div": (0b100, 0b0000001), "divu": (0b101, 0b0000001),
    "rem": (0b110, 0b0000001), "remu": (0b111, 0b0000001),
}
_I_OPS = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011,
    "xori": 0b100, "ori": 0b110, "andi": 0b111,
}
_SHIFTS = {"slli": (0b001, 0), "srli": (0b101, 0), "srai": (0b101, 0b0100000)}
_LOADS = {"lb": 0b000, "lh": 0b001, "lw": 0b010, "lbu": 0b100, "lhu": 0b101}
_STORES = {"sb": 0b000, "sh": 0b001, "sw": 0b010}
_BRANCHES = {
    "beq": 0b000, "bne": 0b001, "blt": 0b100,
    "bge": 0b101, "bltu": 0b110, "bgeu": 0b111,
}


def _int_token(token: str, line_no: int) -> int:
    try:
        return int(token.strip().rstrip(","), 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad integer {token!r}") from None


def _mem_operand(token: str, line_no: int):
    """Parse ``offset(base)``."""
    token = token.strip()
    if "(" not in token or not token.endswith(")"):
        raise AssemblerError(
            f"line {line_no}: expected offset(base), got {token!r}"
        )
    offset_str, base_str = token[:-1].split("(", 1)
    offset = _int_token(offset_str or "0", line_no)
    return offset, _reg(base_str, line_no)


@dataclass
class Program:
    """An assembled program: words plus label addresses."""

    words: list = field(default_factory=list)
    labels: dict = field(default_factory=dict)
    base_address: int = 0

    def to_bytes(self) -> bytes:
        """Little-endian binary image."""
        blob = bytearray()
        for word in self.words:
            blob += (word & 0xFFFFFFFF).to_bytes(4, "little")
        return bytes(blob)

    @property
    def size_bytes(self) -> int:
        """Image size in bytes."""
        return 4 * len(self.words)


def asm(source: str, base_address: int = 0) -> Program:
    """Assemble RV32IM source text into a :class:`Program`."""
    # Pass 1: collect labels.
    lines = []
    labels = {}
    pc = base_address
    for line_no, raw in enumerate(source.splitlines(), start=1):
        code = raw.split("#", 1)[0].strip()
        if not code:
            continue
        while ":" in code:
            label, _, rest = code.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = pc
            code = rest.strip()
        if not code:
            continue
        mnemonic = code.split()[0].lower()
        # li expands to lui+addi when the constant needs the upper bits.
        if mnemonic == "li":
            operands = code[len("li"):].strip()
            imm = _int_token(operands.split(",", 1)[1], line_no)
            pc += 8 if not -2048 <= imm < 2048 else 4
        else:
            pc += 4
        lines.append((line_no, code))

    # Pass 2: encode.
    program = Program(base_address=base_address, labels=labels)
    pc = base_address

    def resolve(token: str, line_no: int) -> int:
        token = token.strip().rstrip(",")
        if token in labels:
            return labels[token] - pc
        return _int_token(token, line_no)

    for line_no, code in lines:
        parts = code.replace(",", " , ").split()
        tokens = [t for t in parts if t != ","]
        mnemonic = tokens[0].lower()
        operands = tokens[1:]
        words = _encode_line(mnemonic, operands, resolve, line_no, pc)
        program.words.extend(words)
        pc += 4 * len(words)
    return program


def _encode_line(mnemonic, operands, resolve, line_no, pc):
    if mnemonic == "nop":
        return [_encode_i(0b0010011, 0, 0, 0, 0)]
    if mnemonic == "mv":
        rd, rs = _reg(operands[0], line_no), _reg(operands[1], line_no)
        return [_encode_i(0b0010011, rd, 0, rs, 0)]
    if mnemonic == "li":
        rd = _reg(operands[0], line_no)
        imm = _int_token(operands[1], line_no)
        if -2048 <= imm < 2048:
            return [_encode_i(0b0010011, rd, 0, 0, imm)]
        upper = (imm + 0x800) & 0xFFFFF000
        lower = imm - _sext32(upper)
        return [
            _encode_u(0b0110111, rd, upper),
            _encode_i(0b0010011, rd, 0, rd, lower),
        ]
    if mnemonic == "j":
        return [_encode_j(0b1101111, 0, resolve(operands[0], line_no))]
    if mnemonic == "jal":
        if len(operands) == 1:
            return [_encode_j(0b1101111, 1, resolve(operands[0], line_no))]
        rd = _reg(operands[0], line_no)
        return [_encode_j(0b1101111, rd, resolve(operands[1], line_no))]
    if mnemonic == "jalr":
        rd = _reg(operands[0], line_no)
        offset, base = _mem_operand(operands[1], line_no)
        return [_encode_i(0b1100111, rd, 0, base, offset)]
    if mnemonic in ("lui", "auipc"):
        opcode = 0b0110111 if mnemonic == "lui" else 0b0010111
        rd = _reg(operands[0], line_no)
        return [_encode_u(opcode, rd, _int_token(operands[1], line_no) << 12)]
    if mnemonic in _R_OPS:
        funct3, funct7 = _R_OPS[mnemonic]
        rd, rs1, rs2 = (_reg(op, line_no) for op in operands[:3])
        return [_encode_r(0b0110011, rd, funct3, rs1, rs2, funct7)]
    if mnemonic in _I_OPS:
        rd, rs1 = _reg(operands[0], line_no), _reg(operands[1], line_no)
        return [_encode_i(0b0010011, rd, _I_OPS[mnemonic], rs1,
                          _int_token(operands[2], line_no))]
    if mnemonic in _SHIFTS:
        funct3, funct7 = _SHIFTS[mnemonic]
        rd, rs1 = _reg(operands[0], line_no), _reg(operands[1], line_no)
        shamt = _int_token(operands[2], line_no)
        if not 0 <= shamt < 32:
            raise AssemblerError(f"line {line_no}: shift amount {shamt} out of range")
        return [_encode_i(0b0010011, rd, funct3, rs1, (funct7 << 5) | shamt)]
    if mnemonic in _LOADS:
        rd = _reg(operands[0], line_no)
        offset, base = _mem_operand(operands[1], line_no)
        return [_encode_i(0b0000011, rd, _LOADS[mnemonic], base, offset)]
    if mnemonic in _STORES:
        rs2 = _reg(operands[0], line_no)
        offset, base = _mem_operand(operands[1], line_no)
        return [_encode_s(0b0100011, _STORES[mnemonic], base, rs2, offset)]
    if mnemonic in _BRANCHES:
        rs1, rs2 = _reg(operands[0], line_no), _reg(operands[1], line_no)
        return [_encode_b(0b1100011, _BRANCHES[mnemonic], rs1, rs2,
                          resolve(operands[2], line_no))]
    if mnemonic == "ebreak":
        return [0x00100073]
    if mnemonic == "ecall":
        return [0x00000073]
    if mnemonic == "fence":
        return [0x0000000F]
    raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")


def _sext32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value
