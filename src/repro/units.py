"""Physical units and conversions used throughout the library.

Internal conventions (chosen once, used everywhere):

* **time** is expressed in *nanoseconds* (``float``),
* **power** in *milliwatts*,
* **energy** in *nanojoules* — conveniently, ``mW x ns = pJ`` and
  ``1000 pJ = 1 nJ``, so :func:`energy_nj` does the bookkeeping,
* **capacity** in *bytes*,
* **frequency** in *hertz*.

The :class:`Clock` helper converts between cycles and wall time for a
component clocked at a given frequency, mirroring the paper's 50 MHz FPGA
prototype whose memory latencies were scaled to cycle counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ConfigurationError

# Time conversions (canonical unit: nanoseconds).
NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0

# Capacity conversions (canonical unit: bytes).
KIB = 1024
BYTES_64KB = 64 * KIB
BYTES_128KB = 128 * KIB


def us(value: float) -> float:
    """Convert microseconds to nanoseconds."""
    return value * NS_PER_US


def ms(value: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return value * NS_PER_MS


def seconds(value: float) -> float:
    """Convert seconds to nanoseconds."""
    return value * NS_PER_S


def to_ms(value_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return value_ns / NS_PER_MS


def to_us(value_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return value_ns / NS_PER_US


def energy_nj(power_mw: float, time_ns: float) -> float:
    """Energy in nanojoules of ``power_mw`` sustained for ``time_ns``.

    ``mW * ns = pJ``; divide by 1000 to express the result in nJ.
    """
    return power_mw * time_ns / 1000.0


def energy_mj(energy_nj_value: float) -> float:
    """Convert nanojoules to millijoules."""
    return energy_nj_value / 1e6


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6


@dataclass(frozen=True)
class Clock:
    """A clock domain: converts between wall time (ns) and cycle counts.

    The paper prototypes every processor at 50 MHz and scales the 45 nm
    memory latencies of Table III onto that clock; :meth:`cycles_for`
    reproduces that scaling (latency quantised up to whole cycles).
    """

    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"clock frequency must be positive, got {self.frequency_hz}"
            )

    @property
    def period_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return NS_PER_S / self.frequency_hz

    def cycles_for(self, time_ns: float) -> int:
        """Whole number of cycles needed to cover ``time_ns``.

        A zero-latency operation still occupies zero cycles; any positive
        latency is rounded *up* to the next cycle boundary, as synchronous
        hardware would.
        """
        if time_ns < 0:
            raise ConfigurationError(f"time must be non-negative, got {time_ns}")
        if time_ns == 0:
            return 0
        return max(1, math.ceil(time_ns / self.period_ns - 1e-12))

    def time_of(self, cycles: int) -> float:
        """Wall time in nanoseconds of ``cycles`` clock cycles."""
        if cycles < 0:
            raise ConfigurationError(f"cycle count must be non-negative, got {cycles}")
        return cycles * self.period_ns

    def quantize(self, time_ns: float) -> float:
        """Round ``time_ns`` up to the nearest cycle boundary."""
        return self.time_of(self.cycles_for(time_ns))


#: The paper's prototype clock (Genesys2 FPGA @ 50 MHz).
PROTOTYPE_CLOCK = Clock(frequency_hz=mhz(50))
