"""The docs subsystem's generator and gates.

Three jobs, shared by ``repro docs`` and ``tests/test_docs.py``:

* **Registry reference generation** — :func:`registry_markdown` renders
  every registry (architectures, models, scenarios, placement policies,
  dispatch, queue disciplines, autoscalers) with each entry's docstring
  one-liner into ``docs/REGISTRY.md``; the committed file must match the
  live registries byte for byte (checked in CI by ``repro docs
  --check``), so the reference can never drift from the code.
* **Docstring audit** — :func:`audit_docstrings` is a hand-rolled
  :mod:`ast` walk (no linter dependencies) over the public API surface
  (:mod:`repro.api`, :mod:`repro.store`, this module): every module,
  public class, public function and public method must carry a
  non-empty docstring.
* **Registration audit** — :func:`audit_registrations` requires every
  *callable* registered in any registry to carry a docstring, because
  that docstring **is** its line in the generated reference.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path

from .api.registry import (
    ARCHITECTURES,
    AUTOSCALERS,
    DISPATCH,
    MODELS,
    POLICIES,
    QOS,
    SCENARIOS,
)
from .arch.specs import ArchitectureSpec
from .core.placement import PlacementPolicy
from .workloads.models import ModelSpec
from .workloads.scenarios import Scenario

#: The registries the reference documents, with their docs section
#: titles and import paths, in presentation order.
DOCUMENTED_REGISTRIES = (
    ("Architectures", "repro.api.ARCHITECTURES", ARCHITECTURES),
    ("Models", "repro.api.MODELS", MODELS),
    ("Scenarios", "repro.api.SCENARIOS", SCENARIOS),
    ("Placement policies", "repro.api.POLICIES", POLICIES),
    ("Dispatch policies", "repro.api.DISPATCH", DISPATCH),
    ("Queue disciplines", "repro.api.QOS", QOS),
    ("Autoscalers", "repro.api.AUTOSCALERS", AUTOSCALERS),
)

#: PlacementPolicy members are enum values, not callables — their
#: reference lines live here (mirroring the ``#:`` comments in
#: :class:`repro.core.placement.PlacementPolicy`).
_POLICY_NOTES = {
    PlacementPolicy.DYNAMIC_LUT:
        "Re-consult the allocation LUT every slice — "
        "the paper's HH-PIM behaviour.",
    PlacementPolicy.FIXED_LATENCY_OPTIMAL:
        "One latency-optimal placement, never moved "
        "(the conventional-PIM baseline).",
    PlacementPolicy.FIXED_MRAM_ONLY:
        "All weights in MRAM, SRAM reserved for I/O "
        "(the Hybrid-PIM behaviour).",
}


def describe(value) -> str:
    """One reference line for a registry entry.

    Callables (scenario factories, dispatch/discipline/autoscaler
    classes) contribute their docstring's first line; spec objects,
    which carry data rather than prose, are summarised from their
    fields.
    """
    if isinstance(value, ArchitectureSpec):
        modules = f"{value.hp.module_count} HP"
        if value.lp:
            modules += f" + {value.lp.module_count} LP"
        memory = []
        if value.hp.mram_capacity:
            memory.append(f"{value.hp.mram_capacity // 1024} kB MRAM")
        memory.append(f"{value.hp.sram_capacity // 1024} kB SRAM")
        return f"{modules} modules, {' + '.join(memory)} per module."
    if isinstance(value, ModelSpec):
        return (
            f"{value.params:,} params, {value.macs:,} MACs, "
            f"{value.pim_ratio:.0%} PIM ops."
        )
    if isinstance(value, PlacementPolicy):
        return _POLICY_NOTES.get(
            value, _first_line(inspect.getdoc(type(value)))
        )
    if isinstance(value, Scenario):
        return (
            f"Pre-materialised scenario ({len(value)} slices, "
            f"peak {value.peak})."
        )
    if callable(value):
        return _first_line(inspect.getdoc(value))
    return _first_line(inspect.getdoc(type(value)))


def _first_line(doc: str | None) -> str:
    return doc.strip().splitlines()[0].strip() if doc and doc.strip() else ""


def registry_markdown() -> str:
    """The full registry reference, rendered from the live registries."""
    lines = [
        "# Registry reference",
        "",
        "Every string key an `ExperimentConfig` accepts, with the entry",
        "registered behind it.  **Generated** by `repro docs` from the",
        "live registries — do not edit by hand; CI fails when this file",
        "is stale (`repro docs --check`).",
        "",
        "Keys are case-insensitive; registering your own entries is",
        "covered in [ARCHITECTURE.md](ARCHITECTURE.md) and the",
        "[README](../README.md).",
    ]
    for title, dotted, registry in DOCUMENTED_REGISTRIES:
        lines += [
            "",
            f"## {title} (`{dotted}`)",
            "",
            "| key | entry |",
            "| --- | --- |",
        ]
        for key, value in registry.items():
            lines.append(f"| `{key}` | {describe(value) or '(undocumented)'} |")
    return "\n".join(lines) + "\n"


def write_registry_doc(path) -> Path:
    """Write the registry reference to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry_markdown())
    return path


def registry_doc_is_fresh(path) -> bool:
    """Whether ``path`` holds exactly the current registry reference."""
    path = Path(path)
    try:
        return path.read_text() == registry_markdown()
    except OSError:
        return False


# -- docstring audit --------------------------------------------------------------


def public_source_files() -> list:
    """The source files whose public surface the audit covers."""
    import repro.api
    import repro.store

    files = [Path(__file__)]
    for package in (repro.api, repro.store):
        files += sorted(Path(package.__file__).parent.glob("*.py"))
    return files


def _needs_doc(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_class(node: ast.ClassDef, where: str) -> list:
    problems = []
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _needs_doc(item.name):
            continue
        if not (ast.get_docstring(item) or "").strip():
            problems.append(
                f"{where}: public method {node.name}.{item.name} "
                f"has no docstring"
            )
    return problems


def audit_file(path) -> list:
    """Docstring violations in one source file (empty = clean).

    Checks the module docstring, public top-level functions and
    classes, and public methods of public classes.  Private names
    (leading underscore) and dunders are exempt; so are nested
    functions, which have no public surface.
    """
    path = Path(path)
    tree = ast.parse(path.read_text(), filename=str(path))
    where = path.name
    problems = []
    if not (ast.get_docstring(tree) or "").strip():
        problems.append(f"{where}: module has no docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _needs_doc(node.name) and not (
                ast.get_docstring(node) or ""
            ).strip():
                problems.append(
                    f"{where}: public function {node.name} has no docstring"
                )
        elif isinstance(node, ast.ClassDef) and _needs_doc(node.name):
            if not (ast.get_docstring(node) or "").strip():
                problems.append(
                    f"{where}: public class {node.name} has no docstring"
                )
            problems += _missing_in_class(node, where)
    return problems


def audit_docstrings() -> list:
    """Docstring violations across the public API surface (empty = clean)."""
    problems = []
    for path in public_source_files():
        problems += audit_file(path)
    return problems


def audit_registrations() -> list:
    """Registered callables whose reference line would be empty."""
    problems = []
    for title, _, registry in DOCUMENTED_REGISTRIES:
        for key, value in registry.items():
            if callable(value) and not _first_line(inspect.getdoc(value)):
                problems.append(
                    f"{title}: registered entry {key!r} "
                    f"({getattr(value, '__name__', type(value).__name__)}) "
                    f"has no docstring"
                )
    return problems
