"""PIM controllers: the HP-PIM and LP-PIM control path of Fig. 2.

Each cluster has its own controller (the dual-controller design of the
paper).  A controller runs the FETCH-DECODE-LOAD-EXECUTE-STORE state
machine, decodes instructions into category/field/module-select, encodes
per-module commands, and owns a Data Allocator whose Data Rearrange Buffer
and Address Generator implement safe inter-cluster data movement.
"""

from .state_machine import ControllerState, StateMachine
from .decoder import DecodedInstruction, InstructionDecoder
from .encoder import CommandEncoder, ModuleCommand
from .allocator import AddressGenerator, DataAllocator, DataRearrangeBuffer
from .controller import PIMController

__all__ = [
    "ControllerState",
    "StateMachine",
    "DecodedInstruction",
    "InstructionDecoder",
    "CommandEncoder",
    "ModuleCommand",
    "AddressGenerator",
    "DataAllocator",
    "DataRearrangeBuffer",
    "PIMController",
]
