"""Data Allocator: address generation and the Data Rearrange Buffer.

The Data Allocator (Fig. 2) manages data placement so that PIM operations
rarely need external data movement; when a placement *does* change, it
moves weight blocks between clusters through the MEM Interface Logic.
The Data Rearrange Buffer decouples the two clusters' speeds: source data
is parked there until the (possibly slower) destination module is ready,
"preventing data conflicts caused by the speed discrepancy between HP-PIM
and LP-PIM modules".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import ControllerError
from ..memory.hybrid import BankKind
from ..pim.cluster import PIMCluster


@dataclass(frozen=True)
class BlockAddress:
    """A physical weight-block location: module index, bank, byte offset."""

    module: int
    bank: BankKind
    offset: int


class AddressGenerator:
    """Maps logical weight-block indices to physical module addresses.

    Blocks assigned to a (cluster, bank) are striped round-robin across
    the cluster's modules: block ``b`` of size ``block_bytes`` lives in
    module ``b % n`` at offset ``(b // n) * block_bytes``.  This is the
    "Address Calculation Logic + Address Register" of Fig. 2.
    """

    def __init__(self, module_count: int, block_bytes: int) -> None:
        if module_count <= 0:
            raise ControllerError("address generator needs >= 1 module")
        if block_bytes <= 0:
            raise ControllerError("block size must be positive")
        self.module_count = module_count
        self.block_bytes = block_bytes

    def locate(self, block: int, bank: BankKind) -> BlockAddress:
        """Physical address of logical block ``block`` in ``bank``."""
        if block < 0:
            raise ControllerError(f"block index {block} must be non-negative")
        module = block % self.module_count
        offset = (block // self.module_count) * self.block_bytes
        return BlockAddress(module=module, bank=bank, offset=offset)

    def blocks_per_module(self, bank_capacity_bytes: int) -> int:
        """How many blocks fit in one module's bank of the given size."""
        return bank_capacity_bytes // self.block_bytes


@dataclass
class _BufferEntry:
    """One parked transfer: destination plus the data bytes."""

    dst: BlockAddress
    data: bytes


class DataRearrangeBuffer:
    """Bounded staging buffer between the two clusters.

    Entries are parked in FIFO order and drained when the destination
    side signals readiness; overflow raises, modelling the hardware's
    back-pressure on the MEM Interface Logic.
    """

    def __init__(self, capacity_bytes: int = 16 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ControllerError("rearrange buffer capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: deque = deque()
        self._occupancy = 0
        self.peak_occupancy = 0
        self.total_parked = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy_bytes(self) -> int:
        """Bytes currently parked."""
        return self._occupancy

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._occupancy

    def park(self, dst: BlockAddress, data: bytes) -> None:
        """Stage ``data`` for later delivery to ``dst``."""
        if len(data) > self.free_bytes:
            raise ControllerError(
                f"rearrange buffer overflow: {len(data)} bytes requested, "
                f"{self.free_bytes} free"
            )
        self._entries.append(_BufferEntry(dst=dst, data=data))
        self._occupancy += len(data)
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)
        self.total_parked += 1

    def drain(self) -> _BufferEntry:
        """Pop the oldest parked entry (destination became ready)."""
        if not self._entries:
            raise ControllerError("rearrange buffer drained while empty")
        entry = self._entries.popleft()
        self._occupancy -= len(entry.data)
        return entry


class DataAllocator:
    """Moves weight blocks between clusters through the rearrange buffer.

    The transfer pipeline per block is: read the block from the source
    module's bank, park it in the Data Rearrange Buffer, then — once the
    destination module is ready — write it into the destination bank at an
    address produced by the destination-side :class:`AddressGenerator`.
    Transfers to distinct modules proceed in parallel because "the
    bandwidth of the MEM Interface Logic is scaled according to the number
    of PIM modules within each cluster".
    """

    def __init__(
        self,
        block_bytes: int = 256,
        buffer_capacity_bytes: int = 16 * 1024,
    ) -> None:
        self.block_bytes = block_bytes
        self.buffer = DataRearrangeBuffer(buffer_capacity_bytes)
        self.blocks_moved = 0
        self.bytes_moved = 0

    def move_blocks(
        self,
        src_cluster: PIMCluster,
        dst_cluster: PIMCluster,
        src_bank: BankKind,
        dst_bank: BankKind,
        block_indices,
    ) -> float:
        """Move logical blocks between clusters; returns elapsed ns.

        Timing model: per destination module, the blocks it receives are
        read from their source banks and written serially into it; module
        streams run in parallel, so the elapsed time is the slowest
        module's read+write chain.  Every byte physically passes through
        the rearrange buffer (functional data is preserved).
        """
        src_gen = AddressGenerator(len(src_cluster), self.block_bytes)
        dst_gen = AddressGenerator(len(dst_cluster), self.block_bytes)
        per_dst_module_time = [0.0] * len(dst_cluster)

        for block in block_indices:
            src_addr = src_gen.locate(block, src_bank)
            dst_addr = dst_gen.locate(block, dst_bank)
            src_module = src_cluster.module(src_addr.module)
            dst_module = dst_cluster.module(dst_addr.module)

            src_bank_obj = src_module.memory.bank(src_addr.bank)
            data = src_bank_obj.read(src_addr.offset, self.block_bytes)
            read_time = (
                self.block_bytes // src_bank_obj.word_bytes
            ) * src_bank_obj.read_latency_ns

            self.buffer.park(dst_addr, data)
            entry = self.buffer.drain()

            dst_bank_obj = dst_module.memory.bank(entry.dst.bank)
            write_time = dst_bank_obj.write(entry.dst.offset, entry.data)

            per_dst_module_time[dst_addr.module] += read_time + write_time
            self.blocks_moved += 1
            self.bytes_moved += self.block_bytes

        return max(per_dst_module_time) if per_dst_module_time else 0.0

    def movement_time_ns(
        self,
        src_cluster: PIMCluster,
        dst_cluster: PIMCluster,
        src_bank: BankKind,
        dst_bank: BankKind,
        block_count: int,
    ) -> float:
        """Analytic estimate of :meth:`move_blocks` without moving data.

        Used by the placement runtime to price a reallocation before
        committing to it (the paper folds this overhead into the
        ``t_constraint`` computation).
        """
        if block_count <= 0:
            return 0.0
        src_bank_obj = src_cluster.modules[0].memory.bank(src_bank)
        dst_bank_obj = dst_cluster.modules[0].memory.bank(dst_bank)
        per_block = (
            self.block_bytes // src_bank_obj.word_bytes
        ) * src_bank_obj.read_latency_ns + (
            self.block_bytes // dst_bank_obj.word_bytes
        ) * dst_bank_obj.write_latency_ns
        blocks_per_stream = -(-block_count // len(dst_cluster))
        return blocks_per_stream * per_block
