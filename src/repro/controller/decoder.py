"""Instruction decoder of the PIM controller.

"The Instruction Decoder decodes the fetched instruction into components
such as the instruction type (Category), specific operation or data
movement details (Instruction Field), and the target module for the
operation (Module Select Signal)." — paper, Section II.

The decoder consumes a typed :class:`~repro.isa.instructions.PimInstruction`
(or a raw 32-bit word) and emits a :class:`DecodedInstruction` whose module
select is an explicit list of module indices, with broadcast expanded to
the cluster's full population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ControllerError
from ..isa.encoding import Category, ClusterId
from ..isa.instructions import (
    BROADCAST_MODULE,
    Compute,
    Config,
    Halt,
    LoadOperands,
    Move,
    PimInstruction,
    StoreResult,
    Sync,
    decode as decode_instruction_word,
)


@dataclass(frozen=True)
class DecodedInstruction:
    """Decoder output: category, instruction field, module select."""

    category: Category
    cluster: ClusterId
    #: Explicit module indices (broadcast already expanded).
    module_select: tuple
    #: Operation details, keyed by field name (opcode-specific).
    instruction_field: dict = field(default_factory=dict)
    #: The original typed instruction, for the command encoder.
    source: PimInstruction = None


class InstructionDecoder:
    """Decoder bound to one cluster's controller."""

    def __init__(self, cluster: ClusterId, module_count: int) -> None:
        if module_count <= 0:
            raise ControllerError("decoder needs a positive module count")
        self.cluster = cluster
        self.module_count = module_count
        self.decoded_count = 0

    def _expand_select(self, module: int) -> tuple:
        if module == BROADCAST_MODULE:
            return tuple(range(self.module_count))
        if not 0 <= module < self.module_count:
            raise ControllerError(
                f"module select {module} outside cluster of "
                f"{self.module_count} modules"
            )
        return (module,)

    def decode(self, instruction) -> DecodedInstruction:
        """Decode a typed instruction or a raw 32-bit word."""
        if isinstance(instruction, int):
            instruction = decode_instruction_word(instruction)
        if instruction.cluster is not self.cluster:
            raise ControllerError(
                f"{self.cluster.name} controller received an instruction for "
                f"the {instruction.cluster.name} cluster"
            )
        self.decoded_count += 1
        select = self._expand_select(instruction.module)

        if isinstance(instruction, Compute):
            fields = {"op": instruction.op, "count": instruction.count}
            category = Category.COMPUTE
        elif isinstance(instruction, LoadOperands):
            fields = {
                "mram_count": instruction.mram_count,
                "sram_count": instruction.sram_count,
            }
            category = Category.LOAD
        elif isinstance(instruction, StoreResult):
            fields = {"address": instruction.address}
            category = Category.STORE
        elif isinstance(instruction, Move):
            fields = {
                "dst_cluster": instruction.dst_cluster,
                "dst_module": instruction.dst_module,
                "block": instruction.block,
                "count": instruction.count,
            }
            category = Category.MOVE
        elif isinstance(instruction, Sync):
            fields = {}
            category = Category.SYNC
        elif isinstance(instruction, Config):
            fields = {"op": instruction.op, "target": instruction.target}
            category = Category.CONFIG
        elif isinstance(instruction, Halt):
            fields = {}
            category = Category.HALT
        else:
            raise ControllerError(f"cannot decode {instruction!r}")

        return DecodedInstruction(
            category=category,
            cluster=self.cluster,
            module_select=select,
            instruction_field=fields,
            source=instruction,
        )
