"""Command encoder: decoded instructions to per-module command signals.

"The Command Encoder then generates command signals for each PIM module
based on the decoded instruction details." — paper, Section II.  One
decoded instruction fans out into one :class:`ModuleCommand` per selected
module, with batch work (MAC counts, operand counts) divided over the
selection the way the cluster's Data Allocator stripes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ControllerError
from ..isa.encoding import Category
from .decoder import DecodedInstruction


@dataclass(frozen=True)
class ModuleCommand:
    """One command signal delivered to one PIM module."""

    module: int
    category: Category
    params: dict = field(default_factory=dict)


def _stripe(total: int, ways: int):
    """Divide ``total`` units of work over ``ways`` modules evenly."""
    base, extra = divmod(total, ways)
    return [base + (1 if i < extra else 0) for i in range(ways)]


class CommandEncoder:
    """Fans a decoded instruction out into per-module commands."""

    def __init__(self) -> None:
        self.encoded_count = 0

    def encode(self, decoded: DecodedInstruction):
        """Return the list of :class:`ModuleCommand` for this instruction."""
        select = decoded.module_select
        if not select:
            raise ControllerError("decoded instruction selects no modules")
        self.encoded_count += 1
        fields = decoded.instruction_field

        if decoded.category is Category.COMPUTE:
            shares = _stripe(fields["count"], len(select))
            return [
                ModuleCommand(
                    module=m,
                    category=decoded.category,
                    params={"op": fields["op"], "count": share},
                )
                for m, share in zip(select, shares)
            ]
        if decoded.category is Category.LOAD:
            mram_shares = _stripe(fields["mram_count"], len(select))
            sram_shares = _stripe(fields["sram_count"], len(select))
            return [
                ModuleCommand(
                    module=m,
                    category=decoded.category,
                    params={"mram_count": ms, "sram_count": ss},
                )
                for m, ms, ss in zip(select, mram_shares, sram_shares)
            ]
        if decoded.category in (Category.STORE, Category.MOVE, Category.CONFIG):
            return [
                ModuleCommand(module=m, category=decoded.category,
                              params=dict(fields))
                for m in select
            ]
        if decoded.category in (Category.SYNC, Category.HALT):
            return [
                ModuleCommand(module=m, category=decoded.category)
                for m in select
            ]
        raise ControllerError(f"unhandled category {decoded.category}")
