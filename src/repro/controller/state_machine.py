"""The controller's basic PIM instruction cycle.

The paper: "The controller operates through the basic PIM instruction
cycle, which includes the FETCH-DECODE-LOAD-EXECUTE-STORE phases, managed
internally by the State Machine."  This module implements that FSM with an
explicit legal-transition table, plus IDLE (queue empty) and HALTED
(after a HALT instruction) resting states.
"""

from __future__ import annotations

from enum import Enum

from ..errors import StateTransitionError


class ControllerState(str, Enum):
    """States of the PIM controller's state machine."""

    IDLE = "idle"
    FETCH = "fetch"
    DECODE = "decode"
    LOAD = "load"
    EXECUTE = "execute"
    STORE = "store"
    HALTED = "halted"


#: Legal transitions.  Not every instruction exercises every phase: a SYNC
#: or CONFIG finishes after DECODE, a pure COMPUTE skips LOAD when its
#: operands are already latched, and a MOVE goes straight to STORE after
#: its LOAD (buffer fill) phase.
_LEGAL_TRANSITIONS = {
    ControllerState.IDLE: {ControllerState.FETCH, ControllerState.HALTED},
    ControllerState.FETCH: {ControllerState.DECODE},
    ControllerState.DECODE: {
        ControllerState.LOAD,
        ControllerState.EXECUTE,
        ControllerState.IDLE,
        ControllerState.HALTED,
    },
    ControllerState.LOAD: {ControllerState.EXECUTE, ControllerState.STORE},
    ControllerState.EXECUTE: {ControllerState.STORE, ControllerState.IDLE},
    ControllerState.STORE: {ControllerState.IDLE, ControllerState.FETCH},
    ControllerState.HALTED: {ControllerState.IDLE},
}


class StateMachine:
    """FSM with transition validation and a bounded history trace."""

    def __init__(self, history_depth: int = 64) -> None:
        self.state = ControllerState.IDLE
        self.history_depth = history_depth
        self.history = [ControllerState.IDLE]
        self.transitions = 0

    def can_transition(self, target: ControllerState) -> bool:
        """Whether moving to ``target`` is legal from the current state."""
        return target in _LEGAL_TRANSITIONS[self.state]

    def transition(self, target: ControllerState) -> ControllerState:
        """Move to ``target``; raises on an illegal transition."""
        if not self.can_transition(target):
            raise StateTransitionError(
                f"illegal transition {self.state.value} -> {target.value}"
            )
        self.state = target
        self.transitions += 1
        self.history.append(target)
        if len(self.history) > self.history_depth:
            del self.history[0]
        return target

    def run_cycle(self, phases) -> None:
        """Run one whole instruction cycle through the given phases.

        ``phases`` is the ordered subset of LOAD/EXECUTE/STORE the current
        instruction needs; FETCH and DECODE are always included, and the
        machine returns to IDLE afterwards.
        """
        self.transition(ControllerState.FETCH)
        self.transition(ControllerState.DECODE)
        for phase in phases:
            self.transition(phase)
        if self.state is not ControllerState.IDLE:
            self.transition(ControllerState.IDLE)

    def halt(self) -> None:
        """Enter the HALTED state (legal from IDLE or DECODE)."""
        self.transition(ControllerState.HALTED)

    def reset(self) -> None:
        """Return to IDLE from HALTED (controller reset)."""
        if self.state is ControllerState.HALTED:
            self.transition(ControllerState.IDLE)
        else:
            self.state = ControllerState.IDLE
            self.history.append(ControllerState.IDLE)
