"""The PIM controller: executes instructions against its cluster.

HH-PIM has two of these — the HP-PIM Controller and the LP-PIM
Controller — with identical architecture (paper, Fig. 2).  A controller
fetches from the shared instruction queue (words addressed to its
cluster), walks its state machine through the instruction's phases, and
drives the cluster's modules through the CMD Interface Logic; MOVEs go
through the Data Allocator's MEM Interface Logic to the peer cluster.
"""

from __future__ import annotations

from ..errors import ControllerError
from ..isa.encoding import Category, ClusterId
from ..isa.instructions import ComputeOp, ConfigOp, GateTarget, PimInstruction
from ..memory.hybrid import BankKind
from ..pim.cluster import PIMCluster
from .allocator import DataAllocator
from .decoder import InstructionDecoder
from .encoder import CommandEncoder
from .state_machine import ControllerState, StateMachine

#: Cycles of controller overhead per instruction phase (fetch+decode).
_PIPELINE_OVERHEAD_NS = 2.0

_GATE_TARGETS = {
    GateTarget.MRAM: "mram",
    GateTarget.SRAM: "sram",
    GateTarget.PE: "pe",
    GateTarget.ALL: "all",
}


class PIMController:
    """Controller for one cluster; optionally wired to a peer for MOVEs."""

    def __init__(
        self,
        cluster: PIMCluster,
        allocator: DataAllocator | None = None,
    ) -> None:
        self.cluster = cluster
        self.state_machine = StateMachine()
        self.decoder = InstructionDecoder(cluster.cluster_id, len(cluster))
        self.encoder = CommandEncoder()
        self.allocator = allocator if allocator is not None else DataAllocator()
        self.peer: PIMCluster | None = None
        self.instructions_retired = 0
        self.busy_time_ns = 0.0
        self.halted = False

    @property
    def cluster_id(self) -> ClusterId:
        """The cluster this controller manages."""
        return self.cluster.cluster_id

    def connect_peer(self, peer: PIMCluster) -> None:
        """Wire the opposite cluster for inter-cluster MOVEs."""
        if peer.cluster_id is self.cluster_id:
            raise ControllerError("peer must be the opposite cluster")
        self.peer = peer

    # -- execution ---------------------------------------------------------------

    def execute(self, instruction: PimInstruction) -> float:
        """Execute one instruction; returns elapsed ns."""
        if self.halted:
            raise ControllerError(
                f"{self.cluster_id.name} controller is halted"
            )
        decoded = self.decoder.decode(instruction)
        commands = self.encoder.encode(decoded)
        phases = self._phases_of(decoded.category)
        self.state_machine.run_cycle(phases)

        elapsed = _PIPELINE_OVERHEAD_NS
        if decoded.category is Category.COMPUTE:
            elapsed += self._run_compute(commands)
        elif decoded.category is Category.LOAD:
            elapsed += self._run_load(commands)
        elif decoded.category is Category.STORE:
            elapsed += self._run_store(commands)
        elif decoded.category is Category.MOVE:
            elapsed += self._run_move(commands)
        elif decoded.category is Category.CONFIG:
            self._run_config(commands)
        elif decoded.category is Category.SYNC:
            pass  # modules are synchronous in this model; barrier is free
        elif decoded.category is Category.HALT:
            self.state_machine.halt()
            self.halted = True
        else:
            raise ControllerError(f"unhandled category {decoded.category}")

        self.instructions_retired += 1
        self.busy_time_ns += elapsed
        return elapsed

    def run_program(self, program) -> float:
        """Execute a sequence of instructions; returns total elapsed ns."""
        return sum(self.execute(instruction) for instruction in program)

    # -- per-category handlers ------------------------------------------------------

    @staticmethod
    def _phases_of(category: Category):
        if category is Category.COMPUTE:
            return (ControllerState.EXECUTE, ControllerState.STORE)
        if category is Category.LOAD:
            return (ControllerState.LOAD, ControllerState.EXECUTE)
        if category is Category.STORE:
            return (ControllerState.LOAD, ControllerState.STORE)
        if category is Category.MOVE:
            return (ControllerState.LOAD, ControllerState.STORE)
        return ()

    def _run_compute(self, commands) -> float:
        elapsed = 0.0
        for command in commands:
            module = self.cluster.module(command.module)
            op = command.params["op"]
            if op is ComputeOp.MAC:
                elapsed = max(
                    elapsed, module.pe.charge_macs(command.params["count"])
                )
            elif op is ComputeOp.CLEAR:
                module.pe.mac.clear()
            elif op is ComputeOp.EMIT:
                module.pe.mac.emit()
            else:
                raise ControllerError(f"unhandled compute op {op}")
        return elapsed

    def _run_load(self, commands) -> float:
        elapsed = 0.0
        for command in commands:
            module = self.cluster.module(command.module)
            counts = {
                BankKind.MRAM: command.params["mram_count"],
                BankKind.SRAM: command.params["sram_count"],
            }
            load_time = module.memory.load_operands(
                {k: v for k, v in counts.items() if k in module.memory.banks}
            )
            for kind, count in counts.items():
                if count and kind in module.memory.banks:
                    module.memory.bank(kind).charge_accesses(reads=count)
            elapsed = max(elapsed, load_time)
        return elapsed

    def _run_store(self, commands) -> float:
        elapsed = 0.0
        for command in commands:
            module = self.cluster.module(command.module)
            where = module.memory.decode(command.params["address"])
            bank = module.memory.bank(where.bank)
            elapsed = max(elapsed, bank.charge_accesses(writes=1))
        return elapsed

    def _run_move(self, commands) -> float:
        if self.peer is None:
            raise ControllerError("MOVE issued but no peer cluster connected")
        elapsed = 0.0
        for command in commands:
            blocks = range(
                command.params["block"],
                command.params["block"] + command.params["count"],
            )
            elapsed = max(
                elapsed,
                self.allocator.move_blocks(
                    src_cluster=self.cluster,
                    dst_cluster=self.peer,
                    src_bank=BankKind.SRAM,
                    dst_bank=BankKind.SRAM,
                    block_indices=blocks,
                ),
            )
        return elapsed

    def _run_config(self, commands) -> None:
        for command in commands:
            module = self.cluster.module(command.module)
            target = _GATE_TARGETS[command.params["target"]]
            if command.params["op"] is ConfigOp.GATE_OFF:
                module.gate(target)
            else:
                module.ungate(target)

    def reset(self) -> None:
        """Clear the halted state and reset the FSM."""
        self.state_machine.reset()
        self.halted = False
