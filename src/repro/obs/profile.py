"""Phase profiler: fold a recorded trace into per-phase aggregates.

Spans answer *what happened*; this module answers *where the time
went*.  Every span contributes its wall time to its phase (the span
name) and its **self time** — wall time minus the wall time of its
direct children — so a phase that merely wraps others (``engine.sweep``
around hundreds of ``engine.run`` spans) shows near-zero self time
while the true hot phases float to the top.  ``repro profile FILE``
renders the fold as a table for any trace file written by
``--trace`` (Chrome JSON or JSONL span dump).
"""

from __future__ import annotations

from dataclasses import dataclass

from .tracing import Trace


@dataclass
class PhaseStats:
    """Aggregates for one phase (all spans sharing a name)."""

    name: str
    count: int = 0
    #: Sum of span wall times, nanoseconds.
    total_ns: int = 0
    #: Sum of span wall times minus direct children, nanoseconds.
    self_ns: int = 0
    max_ns: int = 0

    @property
    def avg_ns(self) -> float:
        """Mean span wall time, nanoseconds."""
        return self.total_ns / self.count if self.count else 0.0


def fold(trace: Trace) -> list:
    """Per-phase stats for ``trace``, hottest self-time first."""
    child_ns: dict = {}
    for span in trace.spans:
        if span.parent is not None:
            child_ns[span.parent] = child_ns.get(span.parent, 0) + span.dur_ns
    phases: dict = {}
    for span in trace.spans:
        stats = phases.get(span.name)
        if stats is None:
            stats = phases[span.name] = PhaseStats(name=span.name)
        stats.count += 1
        stats.total_ns += span.dur_ns
        stats.self_ns += max(0, span.dur_ns - child_ns.get(span.id, 0))
        stats.max_ns = max(stats.max_ns, span.dur_ns)
    return sorted(
        phases.values(), key=lambda s: (-s.self_ns, -s.total_ns, s.name)
    )


def wall_ns(trace: Trace) -> int:
    """End-to-end wall time covered by the trace (max end − min start)."""
    if not trace.spans:
        return 0
    start = min(s.start_ns for s in trace.spans)
    end = max(s.start_ns + s.dur_ns for s in trace.spans)
    return end - start


def _ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}"


def render(trace: Trace) -> str:
    """The ``repro profile`` table for ``trace`` (plain text)."""
    stats = fold(trace)
    total_self = sum(s.self_ns for s in stats) or 1
    header = (
        "phase", "count", "total_ms", "self_ms", "avg_ms", "max_ms", "self%"
    )
    rows = [header]
    for s in stats:
        rows.append((
            s.name,
            str(s.count),
            _ms(s.total_ns),
            _ms(s.self_ns),
            _ms(s.avg_ns),
            _ms(s.max_ns),
            f"{100 * s.self_ns / total_self:.1f}",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(widths[i + 1]) for i, cell in enumerate(row[1:])]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    lines.append("")
    procs = sorted({s.proc for s in trace.spans})
    lines.append(
        f"{len(trace.spans)} spans, {len(stats)} phases, "
        f"{len(procs)} process(es), wall {_ms(wall_ns(trace))} ms"
    )
    return "\n".join(lines)


def profile_file(path) -> str:
    """Load ``path`` (Chrome JSON or JSONL) and render its phase table."""
    return render(Trace.from_file(path))
