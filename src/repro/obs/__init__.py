"""Observability: span tracing, structured events, phase profiling.

Three dependency-free modules built for the serving stack:

* :mod:`repro.obs.tracing` — a span tracer with deterministic ids and
  an injectable clock, exported as Chrome trace-event JSON (loadable
  in Perfetto) or a JSONL span dump.  Off by default; the disabled
  path is a reused null context manager, so instrumented code pays
  near-zero overhead when nobody is tracing.
* :mod:`repro.obs.events` — a structured event log with a typed
  record registry, replacing the ad-hoc ``event=`` prints in the
  daemon and the sweep coordinator while keeping their grep-friendly
  human rendering.
* :mod:`repro.obs.profile` — folds a recorded trace into per-phase
  wall-time / count / self-time aggregates for ``repro profile``.

Spans observe, never perturb: every differential suite (scalar DP /
runtime / QoS, daemon-vs-in-process, resumed-vs-uninterrupted) stays
bit-identical with tracing enabled.
"""

from .events import EventLog, emit, install, uninstall
from .tracing import (
    Span,
    Trace,
    Tracer,
    activate,
    active_tracer,
    deactivate,
    span,
)

__all__ = [
    "EventLog",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "active_tracer",
    "deactivate",
    "emit",
    "install",
    "span",
    "uninstall",
]
