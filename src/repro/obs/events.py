"""Structured event log with typed records and grep-stable rendering.

Replaces the ad-hoc ``event=`` prints in the serving daemon and the
sweep coordinator.  Every event name is declared in :data:`EVENTS`
together with its allowed fields *in rendering order*, so:

* the human line is always ``<prefix> event=<name> key=value ...``
  with a stable field order (the old prints ordered fields by hand,
  inconsistently), still greppable by the CI smoke scripts
  (``event=listening``, ``port=NNNN``, ``stolen=1`` ...);
* a typo'd event or field fails loudly at the call site instead of
  producing a silently unparseable line;
* the same record can land as one JSON object per line in an optional
  JSONL file, timestamped by an injectable clock.

:func:`install` / :func:`emit` provide a process-global hook so deep
layers (e.g. the store's quarantine path) can report events without
threading a logger through every constructor.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

#: Every event the log accepts, with its fields in rendering order.
#: A field absent from an emit() call is simply omitted from the line;
#: a field (or event) not declared here raises :class:`ValueError`.
EVENTS = {
    # -- service lifecycle (daemon + coordinator) --
    "listening": (
        "host", "port", "pid", "workers", "chunks", "configs", "store",
    ),
    "stopped": (
        "pid", "jobs_completed", "jobs_failed", "uptime_s",
        "done", "chunks_completed",
    ),
    "signal": ("signal",),
    "drain": ("jobs_done",),
    "metrics_file_error": ("path", "error"),
    # -- daemon job lifecycle --
    "job_submitted": ("job", "kind", "label"),
    "job_done": ("job", "kind", "label", "wall_s"),
    "job_failed": ("job", "kind", "label", "wall_s", "error"),
    # -- distributed sweep: coordinator --
    "chunk_granted": ("chunk", "worker", "configs", "stolen"),
    "chunk_completed": ("chunk", "worker", "configs"),
    "lease_expired": ("chunk", "worker"),
    "sweep_done": ("chunks", "configs"),
    # -- distributed sweep: worker --
    "started": ("worker", "coordinator"),
    "finished": ("worker", "chunks", "configs", "abandoned"),
    "chunk_abandoned": ("chunk", "worker"),
    "test_stall": ("chunk", "stall_s"),
    # -- store --
    "store_quarantine": ("path", "reason"),
    # -- qos --
    "qos_scalar_fallback": ("discipline", "reason"),
    # -- fuzz harness --
    "fuzz_failure": ("seed", "invariant", "key"),
}


def _render_value(value) -> str:
    """One field value for the human line (grep- and eyeball-friendly)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, str) and (
        not value or any(c.isspace() or c == "=" for c in value)
    ):
        return repr(value)
    return str(value)


class EventLog:
    """Emits typed events as human log lines and optional JSONL records.

    ``prefix`` heads every human line (e.g. ``"repro-serve"``);
    ``sink`` overrides the stderr printer (same contract as the old
    ``log=`` constructor hooks); ``path`` appends one JSON object per
    event; ``clock`` supplies the JSONL ``ts_ns`` timestamps
    (injectable for deterministic tests).
    """

    def __init__(self, prefix: str, sink=None, path=None, clock=None):
        self.prefix = prefix
        self._sink = sink
        self._path = Path(path) if path is not None else None
        self._clock = clock or time.time_ns
        self._lock = threading.Lock()
        self._handle = None
        self.events_logged = 0

    def emit(self, event: str, **fields) -> str:
        """Record one event; returns the rendered human line.

        Raises :class:`ValueError` for an undeclared event name or
        field — the registry in :data:`EVENTS` is the schema.
        """
        order = EVENTS.get(event)
        if order is None:
            raise ValueError(f"unknown event {event!r}")
        unknown = set(fields) - set(order)
        if unknown:
            raise ValueError(
                f"event {event!r} does not accept field(s) "
                f"{', '.join(sorted(unknown))}"
            )
        ordered = [(key, fields[key]) for key in order if key in fields]
        line = f"{self.prefix} event={event}" + "".join(
            f" {key}={_render_value(value)}" for key, value in ordered
        )
        with self._lock:
            self.events_logged += 1
            if self._path is not None:
                record = {"ts_ns": self._clock(), "event": event}
                record.update(
                    (k, str(v) if isinstance(v, Path) else v)
                    for k, v in ordered
                )
                if self._handle is None:
                    self._handle = open(  # noqa: SIM115 - long-lived append
                        self._path, "a", encoding="utf-8"
                    )
                self._handle.write(json.dumps(record) + "\n")
                self._handle.flush()
        if self._sink is not None:
            self._sink(line)
        else:
            print(line, file=sys.stderr, flush=True)
        return line

    def close(self) -> None:
        """Close the JSONL file handle, if one was opened."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# -- process-global hook ----------------------------------------------------------

_INSTALLED: list = []


def install(log: EventLog) -> EventLog:
    """Register ``log`` to receive :func:`emit` global events."""
    if log not in _INSTALLED:
        _INSTALLED.append(log)
    return log


def uninstall(log: EventLog) -> None:
    """Remove ``log`` from the global emit hook (no-op if absent)."""
    try:
        _INSTALLED.remove(log)
    except ValueError:
        pass


def emit(event: str, **fields) -> None:
    """Emit a typed event to every installed log (no-op when none are).

    This is the deep-layer escape hatch: the store's quarantine path
    calls it without knowing whether a daemon, a coordinator, or
    nobody is listening.
    """
    for log in list(_INSTALLED):
        log.emit(event, **fields)
