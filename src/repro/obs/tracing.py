"""A dependency-free span tracer with deterministic ids.

The tracer records *complete spans* — a name, a start timestamp, a
duration, a process/thread, a parent link, and a small ``args`` dict —
into an in-memory buffer.  Design constraints, in priority order:

* **Off by default, near-zero overhead.**  Instrumented code calls the
  module-level :func:`span`; when no tracer is active it returns one
  shared null context manager and touches nothing else.
* **Deterministic.**  Span ids come from a seeded per-tracer counter
  (``proc/N``), thread ids are small ints assigned in order of first
  appearance, and both the monotonic clock and the epoch are
  injectable — golden tests pin the whole export byte for byte.
* **Mergeable.**  Timestamps are epoch-aligned (monotonic delta plus a
  wall-clock epoch captured at tracer creation), so spans recorded in
  a worker process land on the same timeline as the coordinator's and
  a distributed sweep exports one coherent trace.

Exports: Chrome trace-event JSON (``ph="X"`` complete events plus
``ph="M"`` process-name metadata, loadable in Perfetto / chrome://tracing)
via :meth:`Trace.to_chrome`, and a JSONL span dump via
:meth:`Trace.to_jsonl`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Span:
    """One completed span: a named interval on the trace timeline."""

    #: Deterministic id, ``"<proc>/<counter>"`` — unique after merging.
    id: str
    #: Parent span id, or ``None`` for a root span.
    parent: str | None
    #: Phase name, e.g. ``"engine.run"`` or ``"store.get"``.
    name: str
    #: Epoch-aligned start, nanoseconds.
    start_ns: int
    #: Duration, nanoseconds (never negative).
    dur_ns: int
    #: Process label (``"main"``, ``"daemon"``, ``"worker:w1"`` ...).
    proc: str
    #: Small per-process thread index (0 = first thread seen).
    thread: int
    #: Optional key/value annotations (JSON-safe scalars).
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSONL/wire form of this span (plain JSON-safe dict)."""
        record = {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "proc": self.proc,
            "thread": self.thread,
        }
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: dict) -> Span:
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            id=str(record["id"]),
            parent=record.get("parent"),
            name=str(record["name"]),
            start_ns=int(record["start_ns"]),
            dur_ns=int(record["dur_ns"]),
            proc=str(record.get("proc", "main")),
            thread=int(record.get("thread", 0)),
            args=dict(record.get("args") or {}),
        )


class _NullSpan:
    """The shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **args) -> None:
        """No-op counterpart of :meth:`_LiveSpan.annotate`."""


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "name", "args", "id", "parent", "_start")

    def __init__(self, tracer: Tracer, name: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.args = args
        self.id = ""
        self.parent = None
        self._start = 0

    def __enter__(self):
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc):
        self._tracer._exit(self)
        return False

    def annotate(self, **args) -> None:
        """Attach extra ``args`` to the span before it closes."""
        self.args.update(args)


class Tracer:
    """Records spans for one process on an epoch-aligned timeline.

    ``clock`` is a nanosecond monotonic callable (default
    :func:`time.perf_counter_ns`); ``epoch_ns`` anchors the monotonic
    deltas to wall-clock time (default: captured at construction).
    Tests inject both for byte-stable goldens.
    """

    def __init__(
        self,
        proc: str = "main",
        clock=None,
        epoch_ns: int | None = None,
    ):
        self.proc = proc
        self._clock = clock or time.perf_counter_ns
        base = self._clock()
        if epoch_ns is None:
            epoch_ns = time.time_ns()
        self._offset = epoch_ns - base
        self._counter = 0
        self._recorded = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._threads: dict[int, int] = {}
        self.spans: list[Span] = []

    # -- recording ----------------------------------------------------------------

    def span(self, name: str, **args) -> _LiveSpan:
        """A context manager recording ``name`` as a span on exit."""
        return _LiveSpan(self, name, args)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_index(self) -> int:
        ident = threading.get_ident()
        index = self._threads.get(ident)
        if index is None:
            index = self._threads[ident] = len(self._threads)
        return index

    def _enter(self, live: _LiveSpan) -> None:
        stack = self._stack()
        with self._lock:
            self._counter += 1
            live.id = f"{self.proc}/{self._counter}"
        live.parent = stack[-1].id if stack else None
        stack.append(live)
        live._start = self._clock()

    def _exit(self, live: _LiveSpan) -> None:
        end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is live:
            stack.pop()
        span = Span(
            id=live.id,
            parent=live.parent,
            name=live.name,
            start_ns=live._start + self._offset,
            dur_ns=max(0, end - live._start),
            proc=self.proc,
            thread=self._thread_index(),
            args=live.args,
        )
        with self._lock:
            self.spans.append(span)
            self._recorded += 1

    def record(self, name: str, start_ns: int, end_ns: int,
               **args) -> Span:
        """Record an already-elapsed interval as a span (retroactive).

        ``start_ns``/``end_ns`` are raw readings of this tracer's
        ``clock`` taken by the caller — the worker uses this to give
        the claim exchange that *delivered* the trace flag its own
        span.  Parents onto the caller's currently open span, if any.
        """
        with self._lock:
            self._counter += 1
            span_id = f"{self.proc}/{self._counter}"
        stack = self._stack()
        span = Span(
            id=span_id,
            parent=stack[-1].id if stack else None,
            name=name,
            start_ns=start_ns + self._offset,
            dur_ns=max(0, end_ns - start_ns),
            proc=self.proc,
            thread=self._thread_index(),
            args=args,
        )
        with self._lock:
            self.spans.append(span)
            self._recorded += 1
        return span

    # -- harvesting ---------------------------------------------------------------

    @property
    def spans_recorded(self) -> int:
        """Spans closed or ingested so far (monotonic; survives :meth:`drain`)."""
        with self._lock:
            return self._recorded

    def add_foreign_spans(self, records: list) -> None:
        """Ingest spans recorded elsewhere (e.g. shipped over the wire)."""
        spans = [Span.from_dict(r) for r in records]
        with self._lock:
            self.spans.extend(spans)
            self._recorded += len(spans)

    def drain(self) -> list:
        """Pop all buffered spans as wire-ready dicts (counter keeps going)."""
        with self._lock:
            spans, self.spans = self.spans, []
        return [s.to_dict() for s in spans]

    def trace(self) -> Trace:
        """Snapshot the buffered spans as a :class:`Trace`."""
        with self._lock:
            return Trace(list(self.spans))


class Trace:
    """An ordered collection of spans with export helpers."""

    def __init__(self, spans: list | None = None):
        self.spans: list[Span] = list(spans or [])

    def __len__(self) -> int:
        return len(self.spans)

    def merge(self, other: Trace | list) -> Trace:
        """Fold ``other`` (a trace or span-dict list) into this trace."""
        if isinstance(other, Trace):
            self.spans.extend(other.spans)
        else:
            self.spans.extend(Span.from_dict(r) for r in other)
        return self

    def sorted_spans(self) -> list:
        """Spans ordered by (start, proc, id) — the canonical export order."""
        return sorted(
            self.spans, key=lambda s: (s.start_ns, s.proc, s.id)
        )

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON (``{"traceEvents": [...]}``).

        Each span becomes a ``ph="X"`` complete event with microsecond
        ``ts``/``dur``; process labels map to deterministic integer
        pids (sorted order, ``"main"`` first) announced by ``ph="M"``
        ``process_name`` metadata events, so Perfetto shows readable
        track names.
        """
        procs = sorted({s.proc for s in self.spans}, key=_proc_sort_key)
        pids = {proc: i + 1 for i, proc in enumerate(procs)}
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[proc],
                "tid": 0,
                "args": {"name": proc},
            }
            for proc in procs
        ]
        for s in self.sorted_spans():
            event = {
                "name": s.name,
                "ph": "X",
                "ts": _us(s.start_ns),
                "dur": _us(s.dur_ns),
                "pid": pids[s.proc],
                "tid": s.thread,
                "args": {"span_id": s.id, **s.args},
            }
            if s.parent:
                event["args"]["parent_id"] = s.parent
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_jsonl(self) -> str:
        """One JSON span record per line (the raw span dump)."""
        return "".join(
            json.dumps(s.to_dict(), sort_keys=True) + "\n"
            for s in self.sorted_spans()
        )

    def write(self, path) -> Path:
        """Write the trace to ``path``: ``.jsonl`` → span dump, else Chrome JSON."""
        path = Path(path)
        if path.suffix == ".jsonl":
            path.write_text(self.to_jsonl())
        else:
            path.write_text(json.dumps(self.to_chrome(), sort_keys=True))
        return path

    @classmethod
    def from_file(cls, path) -> Trace:
        """Load a trace written by :meth:`write` (either format)."""
        text = Path(path).read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return cls._from_chrome(payload)
        spans = []
        for line in text.splitlines():
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
        return cls(spans)

    @classmethod
    def _from_chrome(cls, payload: dict) -> Trace:
        names = {}
        for event in payload.get("traceEvents", []):
            if event.get("ph") == "M" and event.get("name") == "process_name":
                names[event.get("pid")] = event.get("args", {}).get("name")
        spans = []
        for event in payload.get("traceEvents", []):
            if event.get("ph") != "X":
                continue
            args = dict(event.get("args") or {})
            span_id = str(args.pop("span_id", len(spans) + 1))
            parent = args.pop("parent_id", None)
            spans.append(
                Span(
                    id=span_id,
                    parent=parent,
                    name=str(event.get("name", "")),
                    start_ns=int(round(event.get("ts", 0) * 1000)),
                    dur_ns=int(round(event.get("dur", 0) * 1000)),
                    proc=str(names.get(event.get("pid"), event.get("pid"))),
                    thread=int(event.get("tid", 0)),
                    args=args,
                )
            )
        return cls(spans)


def subtree(spans, root_id: str) -> list:
    """The spans forming the tree rooted at ``root_id`` (root included).

    Spans close children-before-parent, so the input is not
    topologically ordered; membership is grown to a fixed point.
    """
    ids = {root_id}
    selected: list = []
    remaining = list(spans)
    changed = True
    while changed:
        changed = False
        rest = []
        for span in remaining:
            if span.id in ids or span.parent in ids:
                ids.add(span.id)
                selected.append(span)
                changed = True
            else:
                rest.append(span)
        remaining = rest
    return selected


def _proc_sort_key(proc: str):
    return (proc != "main", proc)


def _us(ns: int) -> float:
    value = round(ns / 1000, 3)
    return int(value) if value == int(value) else value


# -- module-level active tracer ---------------------------------------------------

_ACTIVE: Tracer | None = None


def span(name: str, **args):
    """A span context manager on the active tracer, or a shared no-op.

    This is the only call sites pay when tracing is off: one global
    read and the return of a reused null context manager.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


def activate(tracer: Tracer | None = None, **kwargs) -> Tracer:
    """Install (creating if needed) the process-wide active tracer."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer(**kwargs)
    _ACTIVE = tracer
    return tracer


def deactivate() -> Tracer | None:
    """Remove and return the active tracer (``None`` if none was active)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Tracer | None:
    """The currently active tracer, or ``None`` when tracing is off."""
    return _ACTIVE
