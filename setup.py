"""Setuptools shim for environments without the ``wheel`` package.

All package metadata lives in ``pyproject.toml``; this file only enables
the legacy ``pip install -e .`` path.
"""

from setuptools import setup

setup()
